"""Formatting and persistence of experiment outputs.

Every benchmark prints the table/figure series it regenerates (in the
same row/series layout the paper uses) and appends it to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can quote
stable numbers.
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Sequence

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / \
    "results"


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence], note: str = "") -> str:
    """Render one experiment table as aligned monospace text."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def record_result(experiment: str, text: str) -> None:
    """Print the table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.txt"
    path.write_text(text + "\n", encoding="utf-8")


def record_telemetry(experiment: str, telemetry) -> Path:
    """Persist a run's telemetry JSON next to the experiment table.

    ``telemetry`` is a :class:`repro.obs.telemetry.Telemetry`; the
    document lands at ``benchmarks/results/<experiment>.telemetry.json``
    so a figure's numbers can always be traced back to the operator
    counts that produced them.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{experiment}.telemetry.json"
    path.write_text(telemetry.to_json(indent=2) + "\n",
                    encoding="utf-8")
    return path


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)

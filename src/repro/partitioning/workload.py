"""Query workloads and the E/I/D comparison matrices (paper §3.2).

A workload is the set of value-comparison predicates appearing in the
expected queries.  Each predicate compares a container either with
another container (a join) or with a constant, and is of one of three
kinds:

* ``eq``   — equality without prefix matching      (matrix ``E``);
* ``ineq`` — inequality (<, <=, >, >=)             (matrix ``I``);
* ``wild`` — equality with prefix matching          (matrix ``D``).

The matrices are ``(n+1) x (n+1)``: slot ``n`` is the constant column.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

PREDICATE_KINDS = ("eq", "ineq", "wild")


@dataclass(frozen=True)
class Predicate:
    """One value-comparison predicate from the workload.

    ``right_path`` is ``None`` for comparisons against constants.
    """

    kind: str
    left_path: str
    right_path: str | None = None

    def __post_init__(self):
        if self.kind not in PREDICATE_KINDS:
            raise ValueError(
                f"predicate kind must be one of {PREDICATE_KINDS}, "
                f"got {self.kind!r}")

    @property
    def is_join(self) -> bool:
        """True when both sides are containers."""
        return self.right_path is not None

    def paths(self) -> tuple[str, ...]:
        """The container paths this predicate touches."""
        if self.right_path is None:
            return (self.left_path,)
        return (self.left_path, self.right_path)


class Workload:
    """A bag of predicates plus the derived matrices."""

    def __init__(self, predicates: Iterable[Predicate] = ()):
        self.predicates: list[Predicate] = list(predicates)

    def add(self, predicate: Predicate) -> None:
        self.predicates.append(predicate)

    def __len__(self) -> int:
        return len(self.predicates)

    def __iter__(self):
        return iter(self.predicates)

    def touched_paths(self) -> set[str]:
        """Containers involved in at least one predicate.

        The §3.2 cost model disregards untouched containers (footnote 5);
        the loader gives those bzip2-style blob compression.
        """
        return {path for pred in self.predicates for path in pred.paths()}

    def matrices(self, container_paths: Sequence[str]
                 ) -> dict[str, np.ndarray]:
        """Build E/I/D as symmetric ``(n+1) x (n+1)`` count matrices.

        ``container_paths`` fixes the index order; predicates touching
        unknown paths are ignored (they concern other documents).
        """
        index = {path: i for i, path in enumerate(container_paths)}
        n = len(container_paths)
        matrices = {kind: np.zeros((n + 1, n + 1), dtype=np.int64)
                    for kind in PREDICATE_KINDS}
        for predicate in self.predicates:
            i = index.get(predicate.left_path)
            if i is None:
                continue
            if predicate.right_path is None:
                j = n
            else:
                j = index.get(predicate.right_path)
                if j is None:
                    continue
            matrix = matrices[predicate.kind]
            matrix[i, j] += 1
            if i != j:
                matrix[j, i] += 1
        return matrices

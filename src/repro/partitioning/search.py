"""The §3.3 greedy search over compression configurations.

The search space (all partitions of the containers crossed with all
algorithm assignments) has size ``sum_i |A|^|P_i|`` over the Bell-number
many partitions — exponential, so the paper moves greedily:

* start from ``s_0``: every container alone, a generic algorithm
  (bzip) everywhere;
* draw the workload's predicates in random order; for each predicate
  over containers ``ct_i``/``ct_j``, build the candidate *moves* —
  switch the (shared) group's algorithm to one enabling the predicate,
  or, across two groups, either extract ``{ct_i, ct_j}`` into a fresh
  set or merge the two groups — and keep whichever of the candidates
  (including the current configuration) costs least.

Each predicate explores a constant number of moves, so the strategy is
linear in ``|Pred|`` and yields a locally optimal configuration.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from repro.compression.registry import codec_class
from repro.partitioning.config import CompressionConfiguration
from repro.partitioning.cost import ContainerProfile, CostModel
from repro.partitioning.workload import Workload

#: the algorithm set the paper's system actually chooses among.
DEFAULT_ALGORITHMS = ("alm", "huffman", "bzip2")
#: the §3.3 "generic compression algorithm (e.g. bzip)" for ``s_0``.
DEFAULT_INITIAL_ALGORITHM = "bzip2"


def choose_enabling_algorithm(kind: str,
                              algorithms: Sequence[str]) -> str | None:
    """Best algorithm evaluating ``kind`` in the compressed domain.

    Following §3.3: among the enabling algorithms, prefer the one with
    the greatest number of algorithmic properties holding true; break
    ties by cheaper decompression.  ``None`` when nothing enables it.
    """
    candidates = [name for name in algorithms
                  if codec_class(name).properties.supports(kind)]
    if not candidates:
        return None
    return max(candidates,
               key=lambda name: (codec_class(name).properties.count_true(),
                                 -codec_class(name).decompression_cost))


def greedy_search(profiles: Sequence[ContainerProfile],
                  workload: Workload,
                  algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
                  initial_algorithm: str = DEFAULT_INITIAL_ALGORITHM,
                  seed: int = 0,
                  storage_weight: float = 1.0,
                  decompression_weight: float = 1.0,
                  ) -> tuple[CompressionConfiguration, float]:
    """Run the greedy strategy; returns (configuration, its cost)."""
    model = CostModel(profiles, workload,
                      storage_weight=storage_weight,
                      decompression_weight=decompression_weight)
    known = set(model.paths)
    configuration = CompressionConfiguration.singletons(
        model.paths, initial_algorithm)
    current_cost = model.cost(configuration)

    predicates = [p for p in workload
                  if all(path in known for path in p.paths())]
    rng = random.Random(seed)
    rng.shuffle(predicates)

    for predicate in predicates:
        enabling = choose_enabling_algorithm(predicate.kind, algorithms)
        if enabling is None:
            continue
        candidates: list[CompressionConfiguration] = []
        if predicate.right_path is None \
                or predicate.right_path == predicate.left_path:
            group = configuration.group_of(predicate.left_path)
            assert group is not None
            if group.algorithm != enabling:
                candidates.append(
                    configuration.with_algorithm(group, enabling))
        else:
            group_i = configuration.group_of(predicate.left_path)
            group_j = configuration.group_of(predicate.right_path)
            assert group_i is not None and group_j is not None
            if group_i is group_j:
                if group_i.algorithm != enabling:
                    candidates.append(
                        configuration.with_algorithm(group_i, enabling))
            else:
                candidates.append(configuration.with_pair_extracted(
                    predicate.left_path, predicate.right_path, enabling))
                candidates.append(configuration.with_groups_merged(
                    group_i, group_j, enabling))
        for candidate in candidates:
            candidate_cost = model.cost(candidate)
            if candidate_cost < current_cost:
                configuration = candidate
                current_cost = candidate_cost
    return configuration, current_cost


def annealing_search(profiles: Sequence[ContainerProfile],
                     workload: Workload,
                     algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
                     initial_algorithm: str = DEFAULT_INITIAL_ALGORITHM,
                     seed: int = 0,
                     iterations: int = 400,
                     initial_temperature: float = 0.08,
                     storage_weight: float = 1.0,
                     decompression_weight: float = 1.0,
                     ) -> tuple[CompressionConfiguration, float]:
    """Simulated-annealing exploration of the configuration space.

    The paper notes its greedy explores "a fixed subset of possible
    configuration moves" and "yields a locally optimal solution"
    (§3.3).  This alternative accepts occasional uphill moves —
    random algorithm switches, pair extractions and group merges — at
    a geometrically cooling temperature, escaping the greedy's local
    optima at the price of more cost evaluations.  Returns the best
    configuration visited.
    """
    model = CostModel(profiles, workload,
                      storage_weight=storage_weight,
                      decompression_weight=decompression_weight)
    paths = model.paths
    if not paths:
        empty = CompressionConfiguration.singletons([],
                                                    initial_algorithm)
        return empty, model.cost(empty)
    rng = random.Random(seed)
    current = CompressionConfiguration.singletons(paths,
                                                  initial_algorithm)
    current_cost = model.cost(current)
    best, best_cost = current, current_cost
    temperature = initial_temperature * max(current_cost, 1.0)

    for _ in range(iterations):
        candidate = _random_move(current, paths, algorithms, rng)
        if candidate is None:
            continue
        candidate_cost = model.cost(candidate)
        delta = candidate_cost - current_cost
        if delta <= 0 or (temperature > 0 and
                          rng.random() < math.exp(-delta / temperature)):
            current, current_cost = candidate, candidate_cost
            if current_cost < best_cost:
                best, best_cost = current, current_cost
        temperature *= 0.99
    return best, best_cost


def _random_move(configuration: CompressionConfiguration,
                 paths: Sequence[str], algorithms: Sequence[str],
                 rng: random.Random
                 ) -> CompressionConfiguration | None:
    """One random neighbouring configuration, or ``None`` if no-op."""
    move = rng.randrange(3)
    if move == 0:  # switch a group's algorithm
        group = rng.choice(configuration.groups)
        algorithm = rng.choice(list(algorithms))
        if algorithm == group.algorithm:
            return None
        return configuration.with_algorithm(group, algorithm)
    if move == 1 and len(paths) >= 2:  # extract a random pair
        path_a, path_b = rng.sample(list(paths), 2)
        return configuration.with_pair_extracted(
            path_a, path_b, rng.choice(list(algorithms)))
    if len(configuration.groups) >= 2:  # merge two random groups
        group_a, group_b = rng.sample(configuration.groups, 2)
        return configuration.with_groups_merged(
            group_a, group_b, rng.choice(list(algorithms)))
    return None

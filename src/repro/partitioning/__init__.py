"""Workload-driven compression configuration (paper §3).

XQueC is the first system to exploit the query workload to (i) partition
the containers into sets sharing a source model and (ii) assign each set
the most suitable compression algorithm.  This package implements:

* :mod:`repro.partitioning.config` — the configuration ``<P, alg>``;
* :mod:`repro.partitioning.similarity` — the similarity matrix ``F``;
* :mod:`repro.partitioning.workload` — predicates and the E/I/D
  comparison-count matrices;
* :mod:`repro.partitioning.cost` — the §3.2 cost function;
* :mod:`repro.partitioning.search` — the §3.3 greedy strategy;
* :mod:`repro.partitioning.sharding` — structure-summary subtree
  placement for the sharded serving plane.
"""

from repro.partitioning.config import (
    CompressionConfiguration,
    ContainerGroup,
)
from repro.partitioning.cost import ContainerProfile, CostModel
from repro.partitioning.search import greedy_search
from repro.partitioning.sharding import (
    ShardAssignment,
    assign_shards,
    subtree_key,
)
from repro.partitioning.similarity import similarity_matrix
from repro.partitioning.workload import Predicate, Workload

__all__ = [
    "CompressionConfiguration",
    "ContainerGroup",
    "ContainerProfile",
    "CostModel",
    "Predicate",
    "ShardAssignment",
    "Workload",
    "assign_shards",
    "greedy_search",
    "similarity_matrix",
    "subtree_key",
]

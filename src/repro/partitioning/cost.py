"""The §3.2 cost function for compression configurations.

The cost of a configuration ``s = <P, alg>`` is a weighted sum of

* **storage costs** — container records (``c_s``) and source-model
  structures (``c_a``), estimated per group from the *merged* character
  distribution of its members: grouping dissimilar containers raises the
  shared model's entropy and therefore the estimate, which is exactly
  the paper's two-container a/b-vs-c/d example; and
* **decompression costs** — derived from the E/I/D matrices: a matrix
  entry costs nothing iff both sides share a source model *and* the
  group's algorithm supports the predicate kind in the compressed
  domain; otherwise the involved containers must be decompressed, at the
  algorithm's per-record rate ``d_c``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from collections.abc import Sequence

import math

import numpy as np

from repro.compression.registry import codec_class
from repro.partitioning.config import CompressionConfiguration
from repro.partitioning.workload import PREDICATE_KINDS, Workload

#: estimated bits/char relative to the merged entropy H, per algorithm.
#: (slope, intercept): bits/char ~= slope * H + intercept.
_BITS_PER_CHAR = {
    "huffman": (1.0, 0.5),
    "hutucker": (1.0, 1.0),
    "arithmetic": (1.0, 0.05),
    "alm": (0.75, 0.0),     # dictionary tokens beat the char-level bound
    "bzip2": (0.45, 0.0),   # context modelling, but no record access
    "zlib": (0.55, 0.0),
}
#: extra source-model bytes beyond the per-character table.
_MODEL_OVERHEAD = {"alm": 1536, "arithmetic": 64}


@dataclass
class ContainerProfile:
    """Data statistics of one container, input to the cost model."""

    path: str
    count: int
    total_chars: int
    char_counts: Counter = field(default_factory=Counter)

    @classmethod
    def from_values(cls, path: str, values: Sequence[str]
                    ) -> "ContainerProfile":
        counts: Counter = Counter()
        total = 0
        for value in values:
            counts.update(value)
            total += len(value)
        return cls(path=path, count=len(values), total_chars=total,
                   char_counts=counts)

    def entropy_bits(self) -> float:
        """Per-character Shannon entropy of this container."""
        return _entropy(self.char_counts)


def _entropy(counts: Counter) -> float:
    total = sum(counts.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for n in counts.values():
        p = n / total
        entropy -= p * math.log2(p)
    return entropy


class CostModel:
    """Evaluates configurations against profiles and a workload."""

    def __init__(self, profiles: Sequence[ContainerProfile],
                 workload: Workload,
                 storage_weight: float = 1.0,
                 decompression_weight: float = 1.0,
                 similarity: np.ndarray | None = None):
        self._profiles = {p.path: p for p in profiles}
        self._paths = [p.path for p in profiles]
        self._index = {path: i for i, path in enumerate(self._paths)}
        self._matrices = workload.matrices(self._paths)
        self._storage_weight = storage_weight
        self._decompression_weight = decompression_weight
        #: F is accepted for interface fidelity; the entropy of merged
        #: character distributions subsumes its effect on storage here.
        self._similarity = similarity

    @property
    def paths(self) -> list[str]:
        """Container paths in matrix-index order."""
        return list(self._paths)

    # -- storage ------------------------------------------------------------

    def storage_cost(self, configuration: CompressionConfiguration
                     ) -> float:
        """Container-record bytes (``c_s``) summed over all groups."""
        total = 0.0
        for group in configuration.groups:
            members = [self._profiles[p] for p in group.container_paths
                       if p in self._profiles]
            if not members:
                continue
            merged: Counter = Counter()
            for profile in members:
                merged.update(profile.char_counts)
            slope, intercept = _BITS_PER_CHAR.get(
                group.algorithm, (1.0, 1.0))
            bits_per_char = slope * _entropy(merged) + intercept
            for profile in members:
                total += bits_per_char * profile.total_chars / 8.0
                total += 4.0 * profile.count  # parent pointers
        return total

    def model_cost(self, configuration: CompressionConfiguration) -> float:
        """Source-model bytes (``c_a``): one shared model per group."""
        total = 0.0
        for group in configuration.groups:
            members = [self._profiles[p] for p in group.container_paths
                       if p in self._profiles]
            if not members:
                continue
            merged: Counter = Counter()
            for profile in members:
                merged.update(profile.char_counts)
            total += 3.0 * len(merged)
            total += _MODEL_OVERHEAD.get(group.algorithm, 0)
        return total

    # -- decompression --------------------------------------------------------

    def decompression_cost(self, configuration: CompressionConfiguration
                           ) -> float:
        """The §3.2 case analysis summed over E, I and D."""
        total = 0.0
        n = len(self._paths)
        for kind in PREDICATE_KINDS:
            matrix = self._matrices[kind]
            for i in range(n + 1):
                for j in range(i, n + 1):
                    entries = int(matrix[i, j])
                    if entries == 0:
                        continue
                    total += entries * self._entry_cost(
                        configuration, kind, i, j, n)
        return total

    def _entry_cost(self, configuration: CompressionConfiguration,
                    kind: str, i: int, j: int, n: int) -> float:
        if i == n and j == n:
            return 0.0  # constant-constant never touches containers
        if j == n or i == j:
            # Comparison with a constant, or a self-comparison: only one
            # container's records are at stake (the paper's adjustment).
            path = self._paths[i if i != n else j]
            algorithm = configuration.algorithm_of(path)
            if algorithm is None:
                return 0.0
            if _supports(algorithm, kind):
                return 0.0
            return self._records(path) * _d_c(algorithm)
        path_i, path_j = self._paths[i], self._paths[j]
        group_i = configuration.group_of(path_i)
        group_j = configuration.group_of(path_j)
        if group_i is None or group_j is None:
            return 0.0
        if group_i is group_j:
            if _supports(group_i.algorithm, kind):
                return 0.0  # shared model + supported predicate
            # case (iii): shared model, unsupported comparison
            d_c = _d_c(group_i.algorithm)
            return (self._records(path_i) + self._records(path_j)) * d_c
        # cases (i)/(ii): different algorithms or different source models
        return (self._records(path_i) * _d_c(group_i.algorithm)
                + self._records(path_j) * _d_c(group_j.algorithm))

    def _records(self, path: str) -> float:
        profile = self._profiles[path]
        # Decompression effort scales with record count and record size.
        average_chars = (profile.total_chars / profile.count
                         if profile.count else 0.0)
        return profile.count * max(average_chars, 1.0)

    # -- total -----------------------------------------------------------------

    def cost(self, configuration: CompressionConfiguration) -> float:
        """Weighted total cost of a configuration."""
        storage = (self.storage_cost(configuration)
                   + self.model_cost(configuration))
        return (self._storage_weight * storage
                + self._decompression_weight
                * self.decompression_cost(configuration))

    def breakdown(self, configuration: CompressionConfiguration
                  ) -> dict[str, float]:
        """Component costs, for reports and tests."""
        return {
            "storage": self.storage_cost(configuration),
            "models": self.model_cost(configuration),
            "decompression": self.decompression_cost(configuration),
            "total": self.cost(configuration),
        }


def _supports(algorithm: str, kind: str) -> bool:
    return codec_class(algorithm).properties.supports(kind)


def _d_c(algorithm: str) -> float:
    return codec_class(algorithm).decompression_cost

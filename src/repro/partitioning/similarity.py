"""The container similarity matrix ``F`` (paper §3.2).

``F[i, j]`` is a normalized similarity in [0, 1] between containers
``ct_i`` and ``ct_j``, built from data statistics: the overlap of their
value sets and the cosine similarity of their character distributions —
the two signals the paper names (number of overlapping values, character
distribution within the container entries).
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence

import numpy as np

#: weight of value-overlap vs character-distribution similarity.
_OVERLAP_WEIGHT = 0.4


def char_cosine(counts_a: Counter, counts_b: Counter) -> float:
    """Cosine similarity of two character-count vectors."""
    if not counts_a or not counts_b:
        return 0.0
    dot = sum(n * counts_b.get(ch, 0) for ch, n in counts_a.items())
    norm_a = math.sqrt(sum(n * n for n in counts_a.values()))
    norm_b = math.sqrt(sum(n * n for n in counts_b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)


def value_overlap(values_a: set[str], values_b: set[str]) -> float:
    """Jaccard overlap of the two value sets."""
    if not values_a or not values_b:
        return 0.0
    intersection = len(values_a & values_b)
    union = len(values_a | values_b)
    return intersection / union


def pair_similarity(values_a: Sequence[str],
                    values_b: Sequence[str]) -> float:
    """Similarity of two containers' value collections, in [0, 1]."""
    counts_a: Counter = Counter()
    for v in values_a:
        counts_a.update(v)
    counts_b: Counter = Counter()
    for v in values_b:
        counts_b.update(v)
    cosine = char_cosine(counts_a, counts_b)
    overlap = value_overlap(set(values_a), set(values_b))
    return _OVERLAP_WEIGHT * overlap + (1.0 - _OVERLAP_WEIGHT) * cosine


def similarity_matrix(value_lists: Sequence[Sequence[str]]) -> np.ndarray:
    """Symmetric ``F`` with unit diagonal over n containers."""
    n = len(value_lists)
    matrix = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            similarity = pair_similarity(value_lists[i], value_lists[j])
            matrix[i, j] = similarity
            matrix[j, i] = similarity
    return matrix


def cluster_by_similarity(value_lists: Sequence[Sequence[str]],
                          threshold: float = 0.55) -> list[list[int]]:
    """Group container indexes whose pairwise similarity >= threshold.

    Single-linkage union-find over ``F``: the source-model sharing the
    paper's §3 example arrives at (the three Shakespeare containers in
    one set) falls out of data similarity alone when no workload is
    available to drive the full cost model.
    """
    n = len(value_lists)
    matrix = similarity_matrix(value_lists)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i in range(n):
        for j in range(i + 1, n):
            if matrix[i, j] >= threshold:
                parent[find(i)] = find(j)
    clusters: dict[int, list[int]] = {}
    for i in range(n):
        clusters.setdefault(find(i), []).append(i)
    return sorted(clusters.values())

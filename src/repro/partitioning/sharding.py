"""Shard assignment by structure-summary subtree (path partitioning).

The follow-up work in PAPERS.md ("Path Summaries and Path Partitioning
in Modern XML Databases") splits storage by structure-summary subtree;
this module is that playbook applied to the serving plane: the
containers under one summary subtree (``/site/people``,
``/site/open_auctions``, ...) form the unit of placement, and the
subtrees are packed onto ``N`` shards so each worker process serves a
balanced slice of the document and warms its caches for *its* slice
only.

The scoring reuses the §3.2 partitioning machinery: each subtree's
weight is the :class:`~repro.partitioning.cost.CostModel` storage
estimate of its containers (entropy-driven, the same quantity the
compression search minimizes), optionally boosted by workload access
counts.  Placement is greedy longest-processing-time bin packing with
a join-affinity tie-break: subtrees that the workload joins across
prefer to land on one shard, so value joins stay shard-local where the
balance budget allows.

Every query remains answerable by every worker (each holds the whole
repository — XQuery joins reach across subtrees); the assignment
drives *routing*, cache locality and the cross-shard accounting, not
reachability.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

from repro.partitioning.config import CompressionConfiguration
from repro.partitioning.cost import ContainerProfile, CostModel
from repro.partitioning.workload import Workload

#: shards within this factor of the lightest one are eligible for the
#: join-affinity tie-break (balance gives way to co-location by ≤25%).
AFFINITY_SLACK = 1.25


def subtree_key(container_path: str) -> str:
    """The structure-summary subtree a container path belongs to.

    The first two element steps — ``/site/people/person/name/#text``
    partitions under ``/site/people``.  Documents shallower than two
    steps fall back to the first step (or ``/``).
    """
    parts = [p for p in container_path.strip("/").split("/") if p]
    if not parts:
        return "/"
    return "/" + "/".join(parts[:2])


class ShardAssignment:
    """The result of :func:`assign_shards`: subtree -> shard placement."""

    def __init__(self, shard_count: int,
                 subtrees_by_shard: list[list[str]],
                 weights: list[float]):
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, "
                             f"got {shard_count}")
        self.shard_count = shard_count
        self.subtrees_by_shard = [sorted(group)
                                  for group in subtrees_by_shard]
        self.weights = list(weights)
        self._shard_of: dict[str, int] = {}
        for shard, group in enumerate(self.subtrees_by_shard):
            for key in group:
                self._shard_of[key] = shard

    def shard_of_subtree(self, key: str) -> int:
        """Owning shard of a subtree; unknown subtrees hash stably."""
        shard = self._shard_of.get(key)
        if shard is not None:
            return shard
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") % self.shard_count

    def shard_of_path(self, container_path: str) -> int:
        """Owning shard of one container path."""
        return self.shard_of_subtree(subtree_key(container_path))

    def shards_of_paths(self, container_paths) -> set[int]:
        """Every shard the given container paths touch."""
        return {self.shard_of_path(path) for path in container_paths}

    def route(self, container_paths,
              fallback_key: str = "") -> tuple[int, bool]:
        """(primary shard, crosses shard boundaries?) for a query.

        The primary is the shard owning the majority of the touched
        subtrees (ties to the lowest shard id, so routing is
        deterministic); a query touching no known container hashes its
        ``fallback_key`` so textual re-runs keep hitting one warm
        worker.
        """
        shards = sorted(self.shards_of_paths(container_paths))
        if not shards:
            digest = hashlib.sha256(
                fallback_key.encode("utf-8")).digest()
            return (int.from_bytes(digest[:4], "big")
                    % self.shard_count, False)
        counts: dict[int, int] = {}
        for path in container_paths:
            shard = self.shard_of_path(path)
            counts[shard] = counts.get(shard, 0) + 1
        primary = max(sorted(counts), key=lambda s: counts[s])
        return primary, len(counts) > 1

    def to_dict(self) -> dict:
        """JSON-ready description (CLI/telemetry surface)."""
        return {
            "shard_count": self.shard_count,
            "shards": [
                {"shard": i, "weight": round(self.weights[i], 2),
                 "subtrees": list(self.subtrees_by_shard[i])}
                for i in range(self.shard_count)
            ],
        }

    def __repr__(self) -> str:
        sizes = [len(group) for group in self.subtrees_by_shard]
        return f"<ShardAssignment {self.shard_count} shards {sizes}>"


def subtree_weights(profiles: Sequence[ContainerProfile],
                    workload: Workload | None = None
                    ) -> dict[str, float]:
    """Per-subtree placement weight from the §3.2 storage estimate.

    Each subtree is scored as the cost model's storage estimate of its
    containers compressed alone (``storage_cost`` over a singleton
    configuration — entropy-driven bytes plus parent pointers).  When
    a workload is given, each predicate adds its touched containers'
    record mass again: a hot subtree weighs more than a cold one of
    equal size, so the packing balances *load*, not just bytes.
    """
    by_subtree: dict[str, list[ContainerProfile]] = {}
    for profile in profiles:
        by_subtree.setdefault(subtree_key(profile.path),
                              []).append(profile)
    touches: dict[str, int] = {}
    if workload is not None:
        for predicate in workload:
            for path in predicate.paths():
                touches[path] = touches.get(path, 0) + 1
    weights: dict[str, float] = {}
    for key, members in by_subtree.items():
        model = CostModel(members, Workload())
        configuration = CompressionConfiguration.singletons(
            [p.path for p in members], "huffman")
        weight = model.storage_cost(configuration)
        for profile in members:
            hits = touches.get(profile.path, 0)
            if hits:
                weight += hits * max(profile.total_chars, 1.0)
        weights[key] = weight
    return weights


def _join_affinity(workload: Workload | None) -> dict[str, set[str]]:
    """subtree -> subtrees the workload joins it with."""
    affinity: dict[str, set[str]] = {}
    if workload is None:
        return affinity
    for predicate in workload:
        if predicate.right_path is None:
            continue
        left = subtree_key(predicate.left_path)
        right = subtree_key(predicate.right_path)
        if left == right:
            continue
        affinity.setdefault(left, set()).add(right)
        affinity.setdefault(right, set()).add(left)
    return affinity


def assign_subtrees(weights: dict[str, float], shard_count: int,
                    affinity: dict[str, set[str]] | None = None
                    ) -> ShardAssignment:
    """Pack weighted subtrees onto shards (greedy LPT + affinity).

    Subtrees are placed heaviest-first onto the currently lightest
    shard; when a shard already holding a join partner is within
    :data:`AFFINITY_SLACK` of the lightest, the partner shard wins —
    co-locating joined subtrees at a bounded balance cost.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count}")
    affinity = affinity or {}
    groups: list[list[str]] = [[] for _ in range(shard_count)]
    loads = [0.0] * shard_count
    placed: dict[str, int] = {}
    order = sorted(weights, key=lambda key: (-weights[key], key))
    for key in order:
        lightest = min(range(shard_count), key=lambda s: (loads[s], s))
        target = lightest
        partners = {placed[p] for p in affinity.get(key, ())
                    if p in placed}
        if partners:
            budget = max(loads[lightest], 1e-9) * AFFINITY_SLACK
            eligible = [s for s in sorted(partners)
                        if loads[s] <= budget]
            if eligible:
                target = min(eligible, key=lambda s: (loads[s], s))
        groups[target].append(key)
        loads[target] += weights[key]
        placed[key] = target
    return ShardAssignment(shard_count, groups, loads)


def profiles_from_repository(repository) -> list[ContainerProfile]:
    """One :class:`ContainerProfile` per container (decompressing
    once — done at serve start, not per query)."""
    profiles = []
    for container in repository.containers():
        values = [value for _, value in container.scan_decoded()]
        profiles.append(ContainerProfile.from_values(container.path,
                                                     values))
    return profiles


def assign_shards(repository, shard_count: int,
                  queries: Sequence[str] = (),
                  workload: Workload | None = None) -> ShardAssignment:
    """Choose the shard placement for one repository.

    ``queries`` (XQuery texts) are folded into a workload via the §3.2
    extractor when no explicit ``workload`` is given, so the same
    observations that tune compression also drive placement.
    """
    if workload is None and queries:
        from repro.core.system import extract_workload
        workload = extract_workload(list(queries), repository)
    profiles = profiles_from_repository(repository)
    weights = subtree_weights(profiles, workload)
    if not weights:
        return ShardAssignment(shard_count,
                               [[] for _ in range(shard_count)],
                               [0.0] * shard_count)
    return assign_subtrees(weights, shard_count,
                           _join_affinity(workload))

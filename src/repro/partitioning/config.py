"""Compression configurations: ``s = <P, alg>`` (paper §3.1).

``P`` partitions the textual containers; ``alg`` maps every set of the
partition to one algorithm.  All containers in a set share one source
model — the crux of the storage-vs-decompression trade-off the cost
model navigates.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ContainerGroup:
    """One set of the partition plus its assigned algorithm."""

    container_paths: tuple[str, ...]
    algorithm: str

    def __post_init__(self):
        if not self.container_paths:
            raise ValueError("a container group cannot be empty")

    def __contains__(self, path: str) -> bool:
        return path in self.container_paths


@dataclass
class CompressionConfiguration:
    """A full configuration: disjoint groups covering the containers."""

    groups: list[ContainerGroup] = field(default_factory=list)

    def __post_init__(self):
        seen: set[str] = set()
        for group in self.groups:
            for path in group.container_paths:
                if path in seen:
                    raise ValueError(
                        f"container {path!r} appears in two groups")
                seen.add(path)

    @classmethod
    def singletons(cls, paths: list[str], algorithm: str
                   ) -> "CompressionConfiguration":
        """The §3.3 initial configuration ``s_0``: one container per
        set, one generic algorithm (e.g. bzip) everywhere."""
        return cls(groups=[ContainerGroup((p,), algorithm)
                           for p in paths])

    def group_of(self, path: str) -> ContainerGroup | None:
        """The group containing ``path``, or ``None``."""
        for group in self.groups:
            if path in group:
                return group
        return None

    def algorithm_of(self, path: str) -> str | None:
        """Algorithm assigned to ``path``'s group, or ``None``."""
        group = self.group_of(path)
        return None if group is None else group.algorithm

    def paths(self) -> list[str]:
        """All container paths covered, sorted."""
        return sorted(p for g in self.groups for p in g.container_paths)

    # -- configuration moves (used by the greedy search, §3.3) -------------

    def with_algorithm(self, group: ContainerGroup, algorithm: str
                       ) -> "CompressionConfiguration":
        """Copy with ``group``'s algorithm replaced."""
        groups = [ContainerGroup(g.container_paths, algorithm)
                  if g is group else g for g in self.groups]
        return CompressionConfiguration(groups)

    def with_pair_extracted(self, path_a: str, path_b: str,
                            algorithm: str) -> "CompressionConfiguration":
        """Copy with {a, b} pulled out of their groups into a new set."""
        groups: list[ContainerGroup] = []
        for group in self.groups:
            rest = tuple(p for p in group.container_paths
                         if p not in (path_a, path_b))
            if rest:
                groups.append(ContainerGroup(rest, group.algorithm))
        groups.append(ContainerGroup((path_a, path_b), algorithm))
        return CompressionConfiguration(groups)

    def with_groups_merged(self, group_a: ContainerGroup,
                           group_b: ContainerGroup, algorithm: str
                           ) -> "CompressionConfiguration":
        """Copy with the two groups replaced by their union."""
        if group_a is group_b:
            raise ValueError("cannot merge a group with itself")
        groups = [g for g in self.groups
                  if g is not group_a and g is not group_b]
        merged = ContainerGroup(
            group_a.container_paths + group_b.container_paths, algorithm)
        groups.append(merged)
        return CompressionConfiguration(groups)

    def __repr__(self) -> str:
        inner = "; ".join(
            f"{g.algorithm}{list(g.container_paths)}" for g in self.groups)
        return f"<Configuration {inner}>"

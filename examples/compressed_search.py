"""Compressed-domain operations up close: codecs and containers.

Shows the machinery the query engine is built on: order-preserving
ALM comparisons, Huffman prefix matching, and binary-searched interval
access into a sorted container — all without decompressing the stored
values.

Run:  python examples/compressed_search.py
"""

from repro.compression.alm import ALMCodec
from repro.compression.huffman import HuffmanCodec
from repro.compression.registry import train_codec
from repro.storage.containers import ValueContainer

CITY_NAMES = ["Amsterdam", "Athens", "Barcelona", "Berlin", "Bologna",
              "Budapest", "Copenhagen", "Dublin", "Florence", "Geneva",
              "Hamburg", "Helsinki", "Lisbon", "Ljubljana", "London",
              "Madrid", "Marseille", "Milan", "Munich", "Naples",
              "Oslo", "Paris", "Porto", "Prague", "Rome", "Seville",
              "Stockholm", "Turin", "Vienna", "Warsaw", "Zurich"]


def main() -> None:
    # --- ALM: inequality in the compressed domain --------------------
    alm = ALMCodec.train(CITY_NAMES)
    print("ALM (order-preserving dictionary compression)")
    paris = alm.encode("Paris")
    berlin = alm.encode("Berlin")
    print(f"  encode('Paris')  -> {paris.bits:>3} bits")
    print(f"  encode('Berlin') -> {berlin.bits:>3} bits")
    print(f"  compressed('Berlin') < compressed('Paris'): "
          f"{berlin < paris}   (and 'Berlin' < 'Paris': "
          f"{'Berlin' < 'Paris'})")
    ordered = sorted(CITY_NAMES)
    assert [alm.decode(cv) for cv in
            sorted(alm.encode(c) for c in CITY_NAMES)] == ordered
    print("  sorting compressed values == sorting the plain strings")
    print()

    # --- Huffman: equality and prefix match --------------------------
    huffman = HuffmanCodec.train(CITY_NAMES)
    print("Huffman (order-agnostic, prefix-matchable)")
    rome = huffman.encode("Rome")
    print(f"  encode('Rome') == encode('Rome'): "
          f"{rome == huffman.encode('Rome')}")
    prefix = huffman.encode("Ma")
    matches = [c for c in CITY_NAMES
               if huffman.encode(c).starts_with(prefix)]
    print(f"  starts-with 'Ma' via bit-prefix test: {matches}")
    print()

    # --- Containers: binary-searched interval access ------------------
    print("ValueContainer (sorted, individually compressed records)")
    container = ValueContainer("/cities/#text")
    for node_id, city in enumerate(CITY_NAMES):
        container.add_value(city, parent_id=node_id)
    container.seal(train_codec("alm", CITY_NAMES))
    hits = [(parent, container.codec.decode(cv))
            for parent, cv in container.interval_search("L", "N")]
    print(f"  interval ['L', 'N']: {[city for _, city in hits]}")
    print(f"  (found by binary search over compressed bytes; "
          f"{len(container)} records total)")


if __name__ == "__main__":
    main()

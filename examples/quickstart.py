"""Quickstart: compress an XML document and query it while compressed.

Run:  python examples/quickstart.py
"""

from repro import XQueCSystem

CATALOG = """
<library>
  <book isbn="0201633612">
    <title>Design Patterns</title>
    <author>Erich Gamma</author>
    <price>54.99</price>
    <year>1994</year>
  </book>
  <book isbn="0132350882">
    <title>Clean Code</title>
    <author>Robert Martin</author>
    <price>39.99</price>
    <year>2008</year>
  </book>
  <book isbn="0596007124">
    <title>Head First Design Patterns</title>
    <author>Eric Freeman</author>
    <price>44.95</price>
    <year>2004</year>
  </book>
</library>
"""


def main() -> None:
    # 1. Load: the document is shredded into a compressed repository —
    #    a name dictionary, a structure tree, per-path value containers
    #    (ALM-compressed strings, typed numeric codecs) and a path
    #    summary.
    system = XQueCSystem.load(CATALOG)
    report = system.size_report()
    print(f"original size      : {report.original} bytes")
    print(f"compressed (total) : {report.total} bytes "
          f"(CF = {system.compression_factor:.2f})")
    print(f"containers         : "
          f"{', '.join(system.repository.container_paths()[:3])}, ...")
    print()

    # 2. Query with XQuery; predicates run in the compressed domain.
    queries = [
        ("titles", "/library/book/title/text()"),
        ("cheap books",
         "for $b in /library/book where $b/price/text() < 45 "
         "return $b/title/text()"),
        ("recent, as XML",
         "for $b in /library/book where $b/year/text() >= 2004 "
         'return <hit isbn="{$b/@isbn}">{$b/title/text()}</hit>'),
        ("average price",
         "avg(/library/book/price/text())"),
    ]
    for label, query in queries:
        result = system.query(query)
        print(f"{label}:")
        print(f"  {result.to_xml()}")
        print(f"  [compressed comparisons: "
              f"{result.stats.compressed_comparisons}, "
              f"decompressions: {result.stats.decompressions}]")
        print()


if __name__ == "__main__":
    main()

"""Workload-driven compression tuning — the paper's §3 in action.

Builds the §3.3 scenario: five containers (three of prose, one of
person names, one of dates) under an inequality workload, and shows
how the cost model and greedy search move from the naive initial
configuration to the partitioned one, then what each choice costs.

Run:  python examples/workload_tuning.py
"""

from repro.compression.alm import ALMCodec
from repro.partitioning.config import CompressionConfiguration
from repro.partitioning.cost import ContainerProfile, CostModel
from repro.partitioning.search import greedy_search
from repro.partitioning.workload import Predicate, Workload
from repro.xmark.text_source import TextSource


def build_containers() -> dict[str, list[str]]:
    source = TextSource(seed=5)
    return {
        "/shakespeare1": [source.sentence() for _ in range(400)],
        "/shakespeare2": [source.sentence() for _ in range(400)],
        "/shakespeare3": [source.sentence() for _ in range(400)],
        "/names": [source.person_name() for _ in range(900)],
        "/dates": [source.date() for _ in range(1200)],
    }


def container_cf(values: list[str]) -> float:
    codec = ALMCodec.train(values)
    raw = sum(len(v.encode()) for v in values)
    compressed = sum(codec.encode(v).nbytes for v in values) \
        + codec.model_size_bytes()
    return 1.0 - compressed / raw


def main() -> None:
    containers = build_containers()
    profiles = [ContainerProfile.from_values(path, values)
                for path, values in containers.items()]

    # The workload: inequality predicates on every container, plus
    # comparisons among the prose containers (think ORDER BY and
    # range joins between the text paths).
    workload = Workload(
        [Predicate("ineq", path) for path in containers] * 2
        + [Predicate("ineq", "/shakespeare1", "/shakespeare2"),
           Predicate("ineq", "/shakespeare2", "/shakespeare3")])

    model = CostModel(profiles, workload)
    naive = CompressionConfiguration.singletons(
        sorted(containers), "bzip2")
    print("initial configuration s0 (singletons, bzip):")
    print(f"  {naive}")
    print(f"  cost breakdown: "
          f"{ {k: round(v) for k, v in model.breakdown(naive).items()} }")
    print()

    tuned, cost = greedy_search(profiles, workload, seed=1)
    print("after the greedy search:")
    print(f"  {tuned}")
    print(f"  cost breakdown: "
          f"{ {k: round(v) for k, v in model.breakdown(tuned).items()} }")
    print()

    print("per-family compression factors with dedicated models:")
    for group in sorted(tuned.groups, key=lambda g: g.container_paths):
        values = [v for path in group.container_paths
                  for v in containers[path]]
        print(f"  {group.algorithm:8} "
              f"{'+'.join(p.lstrip('/') for p in group.container_paths)}"
              f": CF {container_cf(values):.2f}")


if __name__ == "__main__":
    main()

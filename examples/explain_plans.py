"""Plan explanations for the whole XMark query set.

Prints, for each benchmark query, the strategy the engine will apply —
where the summary is used, where predicates become container interval
searches, and where joins become cacheable hash joins.

Run:  python examples/explain_plans.py
"""

from repro.query.explain import explain
from repro.xmark.queries import XMARK_QUERIES


def main() -> None:
    for query_id in sorted(XMARK_QUERIES,
                           key=lambda q: int(q.lstrip("Q"))):
        description, text = XMARK_QUERIES[query_id]
        print(f"=== {query_id}: {description}")
        print(explain(text))
        print()


if __name__ == "__main__":
    main()

"""Multi-document collections: join compressed documents.

Loads two separately compressed documents into one system and runs
``document("...")`` queries — including a cross-document join and a
compressed result shipped as the paper's §1 network scenario suggests.

Run:  python examples/multi_document.py
"""

from repro.core.system import XQueCSystem
from repro.query.shipping import receive

CUSTOMERS = """
<customers>
  <customer id="c0"><name>Acme Corp</name><tier>gold</tier></customer>
  <customer id="c1"><name>Globex</name><tier>silver</tier></customer>
  <customer id="c2"><name>Initech</name><tier>gold</tier></customer>
</customers>
"""

INVOICES = """
<invoices>
  <invoice customer="c0"><amount>1200</amount><year>2003</year></invoice>
  <invoice customer="c2"><amount>450</amount><year>2003</year></invoice>
  <invoice customer="c0"><amount>3100</amount><year>2004</year></invoice>
  <invoice customer="c1"><amount>90</amount><year>2004</year></invoice>
</invoices>
"""


def main() -> None:
    system = XQueCSystem.load_collection({
        "customers.xml": CUSTOMERS,
        "invoices.xml": INVOICES,
    })

    print("gold customers:")
    result = system.query(
        'for $c in document("customers.xml")/customers/customer '
        'where $c/tier/text() = "gold" return $c/name/text()')
    for name in result.items:
        print(f"  {name}")

    print()
    print("revenue per gold customer (cross-document join):")
    result = system.query(
        'for $c in document("customers.xml")/customers/customer '
        'where $c/tier/text() = "gold" '
        'return <revenue name="{$c/name/text()}">{'
        'sum(for $i in document("invoices.xml")/invoices/invoice '
        "where $i/@customer = $c/@id "
        "return number($i/amount/text()))}</revenue>")
    print(" ", result.to_xml().replace("\n", "\n  "))
    print(f"  [hash joins: {result.stats.hash_joins}]")

    print()
    print("shipping a compressed result (the paper's network scenario):")
    result = system.query(
        'document("customers.xml")/customers/customer/name/text()')
    payload = result.ship()
    print(f"  payload: {len(payload)} bytes for "
          f"{len(result.items)} values")
    print(f"  received: {receive(payload)}")


if __name__ == "__main__":
    main()

"""The paper's scenario: an XMark auction site, queried compressed.

Generates an auction document with the bundled xmlgen work-alike,
loads it into XQueC with the XMark query workload driving the
compression configuration, and runs the benchmark queries — including
the Q8/Q9 value joins where the compressed engine beats the naive
uncompressed evaluator by orders of magnitude.

Run:  python examples/auction_site.py
"""

import time

from repro import XQueCSystem
from repro.baselines.galax import GalaxEngine
from repro.xmark.generator import generate_xmark
from repro.xmark.queries import XMARK_QUERIES, query_text

FACTOR = 0.03  # ~350 KB document; raise toward 1.0 for XMark11 scale


def main() -> None:
    print(f"generating XMark document (factor {FACTOR})...")
    xml_text = generate_xmark(factor=FACTOR, seed=1)
    print(f"  {len(xml_text) / 1024:.0f} KB, "
          f"{xml_text.count('<person ')} persons, "
          f"{xml_text.count('<closed_auction>')} closed auctions")

    print("loading into XQueC (workload-driven compression)...")
    workload = [text for _, text in XMARK_QUERIES.values()]
    start = time.perf_counter()
    system = XQueCSystem.load(xml_text, workload_queries=workload)
    print(f"  loaded in {time.perf_counter() - start:.1f}s, "
          f"CF = {system.compression_factor:.2f}")
    print(f"  configuration groups: "
          f"{len(system.configuration.groups)}")

    print("loading the uncompressed comparator (Galax stand-in)...")
    galax = GalaxEngine(xml_text)

    print()
    print(f"{'query':<6} {'XQueC':>9} {'Galax':>9}   description")
    for query_id in ("Q1", "Q5", "Q14", "Q20", "Q8", "Q9"):
        description, text = XMARK_QUERIES[query_id]
        start = time.perf_counter()
        ours = system.query(text).to_xml()
        xquec_s = time.perf_counter() - start
        start = time.perf_counter()
        theirs = galax.execute_to_xml(text)
        galax_s = time.perf_counter() - start
        assert ours == theirs, f"{query_id}: engines disagree"
        print(f"{query_id:<6} {xquec_s:>8.3f}s {galax_s:>8.3f}s   "
              f"{description}")

    print()
    print("sample result (Q1):",
          system.query(query_text("Q1")).to_xml())


if __name__ == "__main__":
    main()

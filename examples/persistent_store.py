"""Persistence: compress once, query across sessions.

Builds an XMark repository, saves it to a paged ``.xqc`` file, loads
it back (bit-identical compressed values), and queries it — including
with a registered full-text index.

Run:  python examples/persistent_store.py
"""

import tempfile
from pathlib import Path

from repro.query.engine import QueryEngine
from repro.storage.loader import load_document
from repro.storage.serialization import load_repository, save_repository
from repro.xmark.generator import generate_xmark


def main() -> None:
    xml_text = generate_xmark(factor=0.03, seed=3)
    print(f"document: {len(xml_text) / 1024:.0f} KB")

    repository = load_document(xml_text)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "auction.xqc"
        save_repository(repository, path)
        on_disk = path.stat().st_size
        print(f"repository file: {on_disk / 1024:.0f} KB "
              f"({on_disk / len(xml_text.encode()):.0%} of the "
              "document, checksummed pages)")

        # A "new session": load and query.
        loaded = load_repository(path)
        engine = QueryEngine(loaded)

        result = engine.execute(
            'for $p in /site/people/person '
            'where $p/name/text() < "C" return $p/name/text()')
        print("names < 'C':", result.items)
        print(f"  [{result.stats.compressed_comparisons} compressed "
              f"comparisons, {result.stats.decompressions} "
              "decompressions]")

        # Register a full-text index on the item descriptions and use
        # the whole-word predicate (the paper's Sec 6 extension).
        for container_path in loaded.container_paths():
            if container_path.endswith("description/text/#text"):
                engine.build_fulltext_index(container_path)
        result = engine.execute(
            'for $i in /site/regions/europe/item '
            'where word-contains($i/description/text/text(), "gold") '
            "return $i/@id")
        print("items mentioning 'gold':", result.items)
        print()
        print("plan for that query:")
        print(engine.explain(
            'for $i in /site/regions/europe/item '
            'where word-contains($i/description/text/text(), "gold") '
            "return $i/@id"))


if __name__ == "__main__":
    main()

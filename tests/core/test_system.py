"""Tests for the XQueCSystem facade and workload extraction."""

import pytest

from repro.core.system import XQueCSystem, extract_workload
from repro.storage.loader import load_document
from repro.xmark.generator import generate_xmark

QUERIES = [
    'for $p in /site/people/person where $p/name/text() > "M" '
    "return $p/name/text()",
    'for $p in /site/people/person, $a in '
    "/site/closed_auctions/closed_auction "
    "where $a/buyer/@person = $p/@id return $p/name/text()",
    'for $i in /site/regions/europe/item '
    'where starts-with($i/name/text(), "gold") return $i',
]


@pytest.fixture(scope="module")
def xml_text():
    return generate_xmark(factor=0.01, seed=2)


class TestLoadWithoutWorkload:
    def test_defaults(self, xml_text):
        system = XQueCSystem.load(xml_text)
        assert system.configuration is None
        name = system.repository.container(
            "/site/people/person/name/#text")
        assert name.codec.name == "alm"

    def test_compression_factor_positive(self, xml_text):
        system = XQueCSystem.load(xml_text)
        assert 0.0 < system.compression_factor < 1.0

    def test_query_roundtrip(self, xml_text):
        system = XQueCSystem.load(xml_text)
        result = system.query(
            '/site/people/person[@id = "person0"]/name/text()')
        assert len(result.items) == 1


class TestWorkloadExtraction:
    def test_predicates_classified(self, xml_text):
        repo = load_document(xml_text)
        workload = extract_workload(QUERIES, repo)
        kinds = {p.kind for p in workload}
        assert kinds == {"eq", "ineq", "wild"}

    def test_join_produces_two_sided_predicate(self, xml_text):
        repo = load_document(xml_text)
        workload = extract_workload([QUERIES[1]], repo)
        joins = [p for p in workload if p.is_join]
        assert joins
        assert joins[0].left_path.endswith("@person")
        assert joins[0].right_path.endswith("@id")

    def test_constant_predicate_single_sided(self, xml_text):
        repo = load_document(xml_text)
        workload = extract_workload([QUERIES[0]], repo)
        assert any(not p.is_join and p.kind == "ineq" for p in workload)


class TestLoadWithWorkload:
    def test_configuration_produced(self, xml_text):
        system = XQueCSystem.load(xml_text, workload_queries=QUERIES)
        assert system.configuration is not None
        assert system.workload is not None and len(system.workload) > 0

    def test_inequality_container_gets_alm(self, xml_text):
        system = XQueCSystem.load(xml_text, workload_queries=[QUERIES[0]])
        algorithm = system.configuration.algorithm_of(
            "/site/people/person/name/#text")
        assert algorithm == "alm"

    def test_joined_containers_share_codec(self, xml_text):
        system = XQueCSystem.load(xml_text, workload_queries=[QUERIES[1]])
        config = system.configuration
        buyer = config.group_of(
            "/site/closed_auctions/closed_auction/buyer/@person")
        person = config.group_of("/site/people/person/@id")
        if buyer is not None and person is not None and buyer is person:
            c1 = system.repository.container(
                "/site/closed_auctions/closed_auction/buyer/@person")
            c2 = system.repository.container(
                "/site/people/person/@id")
            assert c1.codec is c2.codec

    def test_queries_still_correct_under_configuration(self, xml_text):
        plain = XQueCSystem.load(xml_text)
        tuned = XQueCSystem.load(xml_text, workload_queries=QUERIES)
        for query in QUERIES:
            assert plain.query(query).to_xml() == \
                tuned.query(query).to_xml()

    def test_size_report(self, xml_text):
        system = XQueCSystem.load(xml_text, workload_queries=QUERIES)
        report = system.size_report()
        assert report.total > 0
        assert report.essential < report.total


class TestFacadePassthroughs:
    def test_explain(self, xml_text):
        system = XQueCSystem.load(xml_text)
        plan = system.explain(
            'for $p in /site/people/person '
            'where $p/name/text() = "x" return $p')
        assert "ContAccess" in plan

    def test_build_fulltext_index(self, xml_text):
        system = XQueCSystem.load(xml_text)
        path = next(p for p in system.repository.container_paths()
                    if p.endswith("description/text/#text"))
        index = system.build_fulltext_index(path)
        assert index.word_count > 0
        result = system.query(
            "for $i in /site/regions/africa/item "
            'where word-contains($i/description/text/text(), "the") '
            "return $i/@id")
        assert result.to_xml() is not None

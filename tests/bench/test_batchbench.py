"""Smoke tests for the batch-vs-row benchmark (DESIGN.md §13).

Speedup magnitudes are machine-dependent, so the committed gate runs
with ``--min-speedup 0`` here; the real threshold is exercised in CI's
perf-gate job and by the impossible-threshold failure case below.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.bench.batchbench import (
    EXPERIMENT_BATCH,
    EXPERIMENT_ENGINE,
    EXPERIMENT_ROW,
    GATED,
    build_pipelines,
    main,
)


def run(tmp_path, *argv):
    trajectory = tmp_path / "BENCH_trajectory.json"
    out = io.StringIO()
    code = main(["--factor", "0.02", "--repeat", "3",
                 "--trajectory", str(trajectory), *argv], out=out)
    return code, out.getvalue(), trajectory


class TestBatchbench:
    def test_records_both_paths_and_passes(self, tmp_path):
        code, output, trajectory = run(tmp_path, "--min-speedup", "0")
        assert code == 0, output
        assert "batchbench: PASS" in output
        points = json.loads(
            trajectory.read_text(encoding="utf-8"))["points"]
        by_experiment = {}
        for point in points:
            by_experiment.setdefault(point["experiment"],
                                     set()).add(point["query"])
        assert set(GATED) <= by_experiment[EXPERIMENT_BATCH]
        assert by_experiment[EXPERIMENT_BATCH] == \
            by_experiment[EXPERIMENT_ROW]
        assert by_experiment[EXPERIMENT_ENGINE] == {"Q1", "Q5"}
        # enough samples per key for the compare gate's default
        # min_samples=3
        for experiment in (EXPERIMENT_BATCH, EXPERIMENT_ROW):
            for query in by_experiment[experiment]:
                samples = [p for p in points
                           if p["experiment"] == experiment
                           and p["query"] == query]
                assert len(samples) >= 3

    def test_row_and_batch_counts_agree(self):
        from repro.storage.loader import load_document
        from repro.xmark.generator import generate_xmark

        repository = load_document(generate_xmark(factor=0.02,
                                                  seed=42))
        for name, build in build_pipelines(repository).items():
            rows = sum(1 for _ in build())
            batched = sum(len(b) for b in build().batches(1024))
            assert rows == batched, name

    def test_impossible_threshold_fails_gate(self, tmp_path):
        code, output, _ = run(tmp_path, "--min-speedup", "1e9")
        assert code == 1
        assert "FAIL" in output

    def test_gated_pipelines_touch_real_containers(self):
        # The gate is only meaningful if the scans see data: pin that
        # the XMark paths used by the benchmark resolve to non-empty
        # containers at the benchmark's default scale.
        from repro.bench.batchbench import ID_PATH, PRICE_PATH
        from repro.storage.loader import load_document
        from repro.xmark.generator import generate_xmark

        repository = load_document(generate_xmark(factor=0.1,
                                                  seed=42))
        assert len(repository.container(ID_PATH)) > 0
        assert len(repository.container(PRICE_PATH)) > 0

"""Tests for the noise-aware perf-regression gate."""

import json

import pytest

from repro.bench.compare import (
    CompareReport,
    compare_points,
    group_points,
    main,
    median,
    parse_requirement,
)


def point(query: str, wall_s: float,
          experiment: str = "smoke") -> dict:
    return {"experiment": experiment, "query": query,
            "wall_s": wall_s}


def points(query: str, *walls: float,
           experiment: str = "smoke") -> list[dict]:
    return [point(query, w, experiment=experiment) for w in walls]


class TestMedian:
    def test_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even(self):
        assert median([4.0, 1.0, 2.0, 3.0]) == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            median([])


class TestGroupPoints:
    def test_groups_by_experiment_and_query(self):
        pts = points("q1", 1.0, 2.0) + points("q2", 3.0)
        groups = group_points(pts)
        assert groups[("smoke", "q1")] == [1.0, 2.0]
        assert groups[("smoke", "q2")] == [3.0]

    def test_skips_nonpositive_and_missing_wall(self):
        pts = [point("q", 0.0), point("q", -1.0),
               {"experiment": "smoke", "query": "q"},
               point("q", 2.0)]
        assert group_points(pts) == {("smoke", "q"): [2.0]}

    def test_experiment_filter(self):
        pts = points("q", 1.0) + \
            points("q", 9.0, experiment="other")
        groups = group_points(pts, {"smoke"})
        assert list(groups) == [("smoke", "q")]


class TestCompare:
    def test_identical_runs_pass(self):
        base = points("q1", 1.0, 1.1, 0.9)
        report = compare_points(base, base)
        assert report.ok
        assert [e.status for e in report.entries] == ["ok"]

    def test_regression_fails_gate(self):
        base = points("q1", 1.0, 1.0, 1.0)
        cur = points("q1", 2.0, 2.1, 1.9)  # 2x > 1.5x threshold
        report = compare_points(cur, base)
        assert not report.ok
        assert report.entries[0].status == "regression"
        assert report.entries[0].ratio == pytest.approx(2.0)

    def test_within_threshold_is_ok(self):
        base = points("q1", 1.0, 1.0, 1.0)
        cur = points("q1", 1.4, 1.4, 1.4)  # 1.4x <= 1.5x
        report = compare_points(cur, base)
        assert report.ok
        assert report.entries[0].status == "ok"

    def test_improvement_reported_not_failed(self):
        base = points("q1", 3.0, 3.0, 3.0)
        cur = points("q1", 1.0, 1.0, 1.0)
        report = compare_points(cur, base)
        assert report.ok
        assert report.entries[0].status == "improvement"

    def test_insufficient_samples_never_fail(self):
        base = points("q1", 1.0, 1.0, 1.0)
        cur = points("q1", 50.0)  # huge, but only one sample
        report = compare_points(cur, base)
        assert report.ok
        assert report.entries[0].status == "insufficient"

    def test_insufficient_baseline_side_too(self):
        base = points("q1", 1.0)
        cur = points("q1", 50.0, 50.0, 50.0)
        report = compare_points(cur, base)
        assert report.entries[0].status == "insufficient"
        assert report.ok

    def test_min_samples_knob(self):
        base = points("q1", 1.0, 1.0)
        cur = points("q1", 5.0, 5.0)
        strict = compare_points(cur, base, min_samples=3)
        assert strict.entries[0].status == "insufficient"
        loose = compare_points(cur, base, min_samples=2)
        assert loose.entries[0].status == "regression"

    def test_new_and_missing_are_informational(self):
        base = points("old", 1.0, 1.0, 1.0)
        cur = points("new", 1.0, 1.0, 1.0)
        report = compare_points(cur, base)
        statuses = {e.query: e.status for e in report.entries}
        assert statuses == {"new": "new", "old": "missing"}
        assert report.ok

    def test_empty_current_is_an_error(self):
        base = points("q1", 1.0, 1.0, 1.0)
        report = compare_points([], base)
        assert not report.ok
        assert any("recorded nothing" in e for e in report.errors)

    def test_empty_baseline_is_an_error(self):
        cur = points("q1", 1.0, 1.0, 1.0)
        report = compare_points(cur, [])
        assert not report.ok
        assert any("baseline" in e for e in report.errors)

    def test_experiment_filter_scopes_the_gate(self):
        base = points("q1", 1.0, 1.0, 1.0) + \
            points("q1", 1.0, 1.0, 1.0, experiment="other")
        cur = points("q1", 1.0, 1.0, 1.0) + \
            points("q1", 9.0, 9.0, 9.0, experiment="other")
        gated = compare_points(cur, base, experiments={"smoke"})
        assert gated.ok
        full = compare_points(cur, base)
        assert not full.ok


class TestReportShapes:
    def test_to_dict_counts_statuses(self):
        base = points("a", 1.0, 1.0, 1.0) + \
            points("b", 1.0, 1.0, 1.0)
        cur = points("a", 1.0, 1.0, 1.0) + \
            points("b", 9.0, 9.0, 9.0)
        payload = compare_points(cur, base).to_dict()
        assert payload["status_counts"] == \
            {"ok": 1, "regression": 1}
        assert payload["ok"] is False
        json.dumps(payload)  # JSON-clean

    def test_render_text_verdict_line(self):
        base = points("a", 1.0, 1.0, 1.0)
        text = compare_points(base, base).render_text()
        assert "gate: PASS" in text
        slow = points("a", 9.0, 9.0, 9.0)
        text = compare_points(slow, base).render_text()
        assert "gate: FAIL" in text

    def test_empty_report_ok_false_only_with_errors(self):
        report = CompareReport(threshold=0.5, min_samples=3)
        assert report.ok  # vacuously: no entries, no errors
        report.errors.append("boom")
        assert not report.ok


class TestMainEntry:
    """End-to-end through the CLI surface: committed baseline passes,
    a synthetically slowed run exits 1 (the acceptance criterion)."""

    @pytest.fixture
    def trajectories(self, tmp_path):
        base = {"points": points("fig7_q1", 1.0, 1.0, 1.0)
                + points("fig7_q2", 2.0, 2.0, 2.0)}
        baseline = tmp_path / "BENCH_baseline.json"
        baseline.write_text(json.dumps(base), encoding="utf-8")
        current = tmp_path / "BENCH_trajectory.json"
        current.write_text(json.dumps(base), encoding="utf-8")
        return baseline, current

    def run(self, *argv) -> tuple[int, str]:
        import io
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_identical_exits_zero(self, trajectories):
        baseline, current = trajectories
        code, output = self.run(
            "--baseline", str(baseline), "--trajectory", str(current))
        assert code == 0
        assert "gate: PASS" in output

    def test_slowed_run_exits_one(self, trajectories, tmp_path):
        baseline, current = trajectories
        data = json.loads(current.read_text(encoding="utf-8"))
        for pt in data["points"]:  # synthetic 10x slowdown
            pt["wall_s"] *= 10.0
        current.write_text(json.dumps(data), encoding="utf-8")
        code, output = self.run(
            "--baseline", str(baseline), "--trajectory", str(current))
        assert code == 1
        assert "regression" in output

    def test_json_and_output_file(self, trajectories, tmp_path):
        baseline, current = trajectories
        report_path = tmp_path / "report.json"
        code, output = self.run(
            "--baseline", str(baseline), "--trajectory", str(current),
            "--json", "--output", str(report_path))
        assert code == 0
        assert json.loads(output)["ok"] is True
        assert json.loads(
            report_path.read_text(encoding="utf-8"))["ok"] is True

    def test_missing_current_file_is_gate_failure(self, trajectories,
                                                  tmp_path):
        baseline, _ = trajectories
        code, output = self.run(
            "--baseline", str(baseline),
            "--trajectory", str(tmp_path / "absent.json"))
        assert code == 1
        assert "recorded nothing" in output


class TestParseRequirement:
    def test_two_parts_defaults_ratio(self):
        assert parse_requirement("exp:q1") == ("exp", "q1", 1.0)

    def test_three_parts(self):
        assert parse_requirement("exp:q1:5.0") == ("exp", "q1", 5.0)

    @pytest.mark.parametrize("spec", ["bad", "a:b:c:d", "exp:q1:x",
                                      "exp:q1:0", "exp:q1:-2"])
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_requirement(spec)


class TestRequireImprovement:
    """The batch-engine acceptance hook: a key must not merely avoid
    regressing — it must beat the baseline by a required factor."""

    def compare(self, current, baseline, requirements):
        return compare_points(current, baseline,
                              require_improvements=requirements)

    def test_met_requirement_passes(self):
        report = self.compare(points("q1", 0.1, 0.1, 0.1),
                              points("q1", 1.0, 1.0, 1.0),
                              [("smoke", "q1", 5.0)])
        assert report.ok
        assert report.errors == []

    def test_unmet_ratio_fails_with_achieved_factor(self):
        report = self.compare(points("q1", 0.5, 0.5, 0.5),
                              points("q1", 1.0, 1.0, 1.0),
                              [("smoke", "q1", 5.0)])
        assert not report.ok
        assert any("got 2.00x" in e for e in report.errors)

    def test_default_ratio_requires_any_improvement(self):
        report = self.compare(points("q1", 1.1, 1.1, 1.1),
                              points("q1", 1.0, 1.0, 1.0),
                              [("smoke", "q1", 1.0)])
        assert not report.ok

    def test_missing_current_key_fails(self):
        report = self.compare(points("q1", 1.0, 1.0, 1.0),
                              points("q1", 1.0, 1.0, 1.0),
                              [("smoke", "absent", 1.0)])
        assert not report.ok
        assert any("no current points" in e for e in report.errors)

    def test_missing_baseline_key_fails(self):
        report = self.compare(points("q1", 1.0, 1.0, 1.0)
                              + points("q2", 1.0, 1.0, 1.0),
                              points("q1", 1.0, 1.0, 1.0),
                              [("smoke", "q2", 1.0)])
        assert not report.ok
        assert any("no baseline points" in e for e in report.errors)

    def test_insufficient_samples_fail_the_requirement(self):
        # Unlike the regression gate (which shrugs at thin data), a
        # required improvement must be *demonstrated* — too few
        # samples is a failure, not a pass.
        report = self.compare(points("q1", 0.1),
                              points("q1", 1.0, 1.0, 1.0),
                              [("smoke", "q1", 5.0)])
        assert not report.ok
        assert any("insufficient samples" in e for e in report.errors)

    def test_cli_flag_end_to_end(self, tmp_path):
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(
            {"points": points("q1", 1.0, 1.0, 1.0)}), encoding="utf-8")
        fast = tmp_path / "fast.json"
        fast.write_text(json.dumps(
            {"points": points("q1", 0.1, 0.1, 0.1)}), encoding="utf-8")
        import io
        out = io.StringIO()
        code = main(["--baseline", str(baseline),
                     "--trajectory", str(fast),
                     "--require-improvement", "smoke:q1:5.0"], out=out)
        assert code == 0
        out = io.StringIO()
        code = main(["--baseline", str(baseline),
                     "--trajectory", str(fast),
                     "--require-improvement", "smoke:q1:50.0"], out=out)
        assert code == 1
        assert "required improvement" in out.getvalue()

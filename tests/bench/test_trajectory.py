"""Tests for the persistent benchmark trajectory tracker."""

import json

import pytest

from repro.bench.trajectory import (
    load_trajectory,
    main,
    point_from_workload_record,
    record_point,
)
from repro.obs import runtime
from repro.obs.telemetry import Telemetry
from repro.obs.workload import WorkloadRecord


@pytest.fixture
def trajectory(tmp_path):
    return tmp_path / "BENCH_trajectory.json"


class TestRecordPoint:
    def test_appends_points(self, trajectory):
        record_point("Q1", 0.5, compressed_ratio=0.9,
                     decompressions=3, experiment="e",
                     path=trajectory, ts="2026-01-01T00:00:00")
        record_point("Q2", 0.1, path=trajectory,
                     ts="2026-01-01T00:00:01")
        points = load_trajectory(trajectory)
        assert [p["query"] for p in points] == ["Q1", "Q2"]
        assert points[0]["wall_s"] == 0.5
        assert points[0]["compressed_ratio"] == 0.9
        assert points[0]["decompressions"] == 3

    def test_file_is_json_document(self, trajectory):
        record_point("Q1", 0.5, path=trajectory, ts="t")
        document = json.loads(trajectory.read_text())
        assert isinstance(document["points"], list)

    def test_atomic_no_temp_left_behind(self, trajectory):
        record_point("Q1", 0.5, path=trajectory, ts="t")
        leftovers = [p for p in trajectory.parent.iterdir()
                     if p.name.endswith(".tmp")]
        assert leftovers == []


class TestRecordPointNs:
    def test_wall_ns_stored_alongside_seconds(self, trajectory):
        record_point("Q1", wall_ns=2_500_000, path=trajectory,
                     ts="t")
        point = load_trajectory(trajectory)[0]
        assert point["wall_ns"] == 2_500_000
        assert point["wall_s"] == pytest.approx(0.0025)

    def test_seconds_alone_still_accepted(self, trajectory):
        record_point("Q1", 0.5, path=trajectory, ts="t")
        point = load_trajectory(trajectory)[0]
        assert point["wall_s"] == 0.5

    def test_neither_clock_raises(self, trajectory):
        with pytest.raises(TypeError):
            record_point("Q1", path=trajectory, ts="t")


class TestLoadTrajectory:
    def test_missing_file(self, trajectory):
        assert load_trajectory(trajectory) == []

    def test_corrupt_file_warns_and_counts(self, trajectory,
                                           capsys):
        trajectory.write_text("{not json")
        telemetry = Telemetry(enabled=True)
        with runtime.activated(telemetry):
            assert load_trajectory(trajectory) == []
        err = capsys.readouterr().err
        assert "corrupt" in err.lower()
        assert str(trajectory) in err
        assert telemetry.metrics.counters()[
            "bench.trajectory.corrupt"] == 1

    def test_foreign_document_shape_warns(self, trajectory,
                                          capsys):
        trajectory.write_text(json.dumps([1, 2]))
        assert load_trajectory(trajectory) == []
        assert "corrupt" in capsys.readouterr().err.lower()

    def test_healthy_file_is_silent(self, trajectory, capsys):
        record_point("Q1", 0.5, path=trajectory, ts="t")
        assert len(load_trajectory(trajectory)) == 1
        assert capsys.readouterr().err == ""


class TestPointFromWorkloadRecord:
    def test_inherits_record_measurements(self, trajectory):
        record = WorkloadRecord(
            query="q", ts="2026-01-01T00:00:00", wall_ns=2_000_000,
            counters={"compressed_comparisons": 3,
                      "decompressed_comparisons": 1,
                      "decompressions": 7})
        point = point_from_workload_record(record, query="Q1",
                                           experiment="e",
                                           path=trajectory)
        assert point["wall_s"] == pytest.approx(0.002)
        assert point["compressed_ratio"] == pytest.approx(0.75)
        assert point["decompressions"] == 7
        assert point["ts"] == "2026-01-01T00:00:00"
        assert load_trajectory(trajectory) == [point]

    def test_accepts_journal_dict(self, trajectory):
        record = WorkloadRecord(query="q", ts="t", wall_ns=1_000,
                                counters={"decompressions": 2})
        point = point_from_workload_record(record.to_dict(),
                                           query="Q2",
                                           path=trajectory)
        assert point["decompressions"] == 2


class TestMain:
    def test_smoke_run_writes_journal_and_points(self, tmp_path,
                                                 capsys):
        trajectory = tmp_path / "BENCH_trajectory.json"
        journal = tmp_path / "journal.jsonl"
        rc = main(["--factor", "0.002", "--queries", "Q1,Q5",
                   "--journal", str(journal),
                   "--trajectory", str(trajectory)])
        assert rc == 0
        assert journal.exists()
        points = load_trajectory(trajectory)
        assert [p["query"] for p in points] == ["Q1", "Q5"]
        assert all(p["wall_s"] > 0 for p in points)
        assert all(p["wall_ns"] > 0 for p in points)

    def test_repeat_appends_one_point_per_run(self, tmp_path):
        trajectory = tmp_path / "BENCH_trajectory.json"
        journal = tmp_path / "journal.jsonl"
        rc = main(["--factor", "0.002", "--queries", "Q1",
                   "--repeat", "3",
                   "--journal", str(journal),
                   "--trajectory", str(trajectory)])
        assert rc == 0
        points = load_trajectory(trajectory)
        assert [p["query"] for p in points] == ["Q1"] * 3

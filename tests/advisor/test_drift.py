"""Tests for the cost-model drift analyzer."""

import pytest

from repro.advisor import (
    analyze_drift,
    live_configuration,
    merged_activity,
    observed_workload,
    render_report,
)
from repro.obs.journal import WorkloadJournal
from repro.obs.workload import WorkloadRecord, WorkloadRecorder
from repro.partitioning.config import (
    CompressionConfiguration,
    ContainerGroup,
)
from repro.query.engine import QueryEngine
from repro.storage.loader import load_document

XML = "<site><people>%s</people></site>" % "".join(
    f"<person><name>Person {i:03d}</name><age>{20 + i % 40}</age>"
    "</person>" for i in range(40))

NAME_PATH = "/site/people/person/name/#text"
AGE_PATH = "/site/people/person/age/#text"

EQ_QUERY = ('for $p in /site/people/person '
            'where $p/name/text() = "Person 007" '
            'return $p/name/text()')


def _record(kind: str, path: str = NAME_PATH) -> WorkloadRecord:
    return WorkloadRecord(
        query="q", ts="2026-01-01T00:00:00", wall_ns=1,
        containers={path: {kind: 1, "interval_searches": 1}},
        predicates=[{"kind": kind, "left": path, "right": None}])


@pytest.fixture
def misconfigured():
    """Repository whose hot string container is a bzip2 blob."""
    return load_document(XML, configuration=CompressionConfiguration(
        [ContainerGroup((NAME_PATH,), "bzip2")]))


class TestObservedWorkload:
    def test_static_predicates_win(self):
        workload = observed_workload([_record("eq")])
        assert len(workload) == 1
        [predicate] = workload
        assert predicate.kind == "eq"
        assert predicate.left_path == NAME_PATH

    def test_dynamic_fallback_when_no_static(self):
        record = WorkloadRecord(
            query="q", ts="", wall_ns=1,
            containers={NAME_PATH: {"ineq": 2, "record_reads": 5}})
        workload = observed_workload([record])
        kinds = [p.kind for p in workload]
        assert kinds == ["ineq", "ineq"]

    def test_malformed_predicates_skipped(self):
        record = WorkloadRecord(
            query="q", ts="", wall_ns=1,
            predicates=[{"kind": "bogus", "left": NAME_PATH},
                        {"kind": "eq", "left": ""}])
        assert len(observed_workload([record])) == 0


class TestMergedActivity:
    def test_sums_across_records(self):
        merged = merged_activity([_record("eq"), _record("eq")])
        assert merged[NAME_PATH]["eq"] == 2
        assert merged[NAME_PATH]["interval_searches"] == 2


class TestLiveConfiguration:
    def test_reflects_forced_algorithm(self, misconfigured):
        configuration = live_configuration(misconfigured)
        assert configuration.algorithm_of(NAME_PATH) == "bzip2"
        assert configuration.algorithm_of(AGE_PATH) == "integer"

    def test_default_load_uses_alm_strings(self):
        configuration = live_configuration(load_document(XML))
        assert configuration.algorithm_of(NAME_PATH) == "alm"

    def test_groups_cover_each_container_once(self, misconfigured):
        configuration = live_configuration(misconfigured)
        assert sorted(configuration.paths()) == sorted(
            c.path for c in misconfigured.containers())


class TestAnalyzeDrift:
    def test_empty_journal_is_valid_report(self, misconfigured):
        report = analyze_drift(misconfigured, [])
        assert report.record_count == 0
        assert report.recommendations == []
        assert report.drift_total == 0.0

    def test_recommends_recompressing_blob_container(
            self, misconfigured):
        report = analyze_drift(misconfigured,
                               [_record("eq"), _record("ineq")])
        assert NAME_PATH in report.analyzed_paths
        assert report.drift_total > 0
        [rec, *_] = report.recommendations
        assert rec.path == NAME_PATH
        assert rec.current == "bzip2"
        assert rec.recommended == "alm"
        assert rec.saving_total > 0
        assert "eq" in rec.enables

    def test_well_configured_repository_no_recommendation(self):
        repository = load_document(XML)
        report = analyze_drift(repository, [_record("eq"),
                                            _record("ineq")])
        assert report.recommendations == []

    def test_numeric_containers_not_analyzed(self, misconfigured):
        report = analyze_drift(misconfigured,
                               [_record("eq", path=AGE_PATH)])
        assert report.analyzed_paths == []

    def test_accepts_journal_dicts(self, misconfigured):
        dicts = [_record("eq").to_dict()]
        report = analyze_drift(misconfigured, dicts)
        assert report.record_count == 1
        assert NAME_PATH in report.analyzed_paths

    def test_to_dict_is_json_ready(self, misconfigured):
        import json
        report = analyze_drift(misconfigured, [_record("eq")])
        document = json.loads(json.dumps(report.to_dict()))
        assert document["record_count"] == 1
        assert document["drift_total"] == pytest.approx(
            report.drift_total)


class TestEndToEnd:
    def test_recorded_queries_drive_recommendation(
            self, misconfigured, tmp_path):
        journal = WorkloadJournal(tmp_path / "j.workload.jsonl")
        engine = QueryEngine(misconfigured,
                             recorder=WorkloadRecorder(journal))
        for _ in range(3):
            engine.execute(EQ_QUERY)
        report = analyze_drift(misconfigured, journal.records())
        assert report.record_count == 3
        assert report.recommendations
        assert report.recommendations[0].path == NAME_PATH


class TestRenderReport:
    def test_mentions_container_and_recommendation(
            self, misconfigured):
        report = analyze_drift(misconfigured, [_record("eq")])
        text = render_report(report)
        assert "Workload observatory" in text
        assert NAME_PATH in text
        assert "bzip2 -> alm" in text

    def test_empty_journal_message(self, misconfigured):
        text = render_report(analyze_drift(misconfigured, []))
        assert "journal is empty" in text

    def test_top_k_limits_containers(self, misconfigured):
        records = [_record("eq"), _record("eq", path=AGE_PATH)]
        report = analyze_drift(misconfigured, records)
        text = render_report(report, top_k=1)
        assert text.count("accesses=") == 1

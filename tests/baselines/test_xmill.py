"""Tests for the XMill baseline."""

import pytest

from repro.baselines.xmill import XMillArchive
from repro.xmark.generator import generate_xmark
from repro.xmlio.dom import parse
from repro.xmlio.writer import serialize

DOC = ("<site><people><person id='p0'><name>Alice</name></person>"
       "<person id='p1'><name>Bob</name></person></people></site>")


class TestRoundTrip:
    def test_exact_reconstruction(self):
        archive = XMillArchive.compress(DOC)
        rebuilt = archive.decompress()
        assert serialize(parse(rebuilt)) == serialize(parse(DOC))

    def test_mixed_content(self):
        doc = "<a>one<b>two</b>three</a>"
        rebuilt = XMillArchive.compress(doc).decompress()
        assert serialize(parse(rebuilt)) == serialize(parse(doc))

    def test_escaping_survives(self):
        doc = "<a x='&lt;&amp;'>a &amp; b</a>"
        rebuilt = XMillArchive.compress(doc).decompress()
        assert parse(rebuilt).root.attribute("x") == "<&"
        assert parse(rebuilt).root.text() == "a & b"

    def test_xmark_roundtrip(self):
        text = generate_xmark(0.01, seed=3)
        rebuilt = XMillArchive.compress(text).decompress()
        assert serialize(parse(rebuilt)) == serialize(parse(text))


class TestCompression:
    def test_containers_grouped_by_path(self):
        archive = XMillArchive.compress(DOC)
        assert "/site/people/person/name/#text" in \
            archive.container_paths()
        assert "/site/people/person/@id" in archive.container_paths()

    def test_compression_factor_strong_on_xmark(self):
        text = generate_xmark(0.02, seed=3)
        archive = XMillArchive.compress(text)
        # XMill is the strongest compressor in the paper's Figure 6.
        assert archive.compression_factor > 0.6

    def test_sizes_consistent(self):
        archive = XMillArchive.compress(DOC)
        assert 0 < archive.compressed_size
        assert archive.original_size == len(DOC.encode())


class TestOpacity:
    def test_no_query_interface(self):
        """XMill's point: no selective access, only full decompression."""
        archive = XMillArchive.compress(DOC)
        assert not hasattr(archive, "query")
        with pytest.raises(AttributeError):
            archive.interval_search  # noqa: B018

"""Tests for the Galax stand-in (naive uncompressed engine)."""

import pytest

from repro.baselines.galax import GalaxEngine
from repro.errors import QueryError

DOC = """
<site><people>
  <person id="p0"><name>Alice</name><age>31</age></person>
  <person id="p1"><name>Bob</name><age>27</age></person>
</people>
<auctions>
  <auction><buyer person="p1"/><price>10</price></auction>
  <auction><buyer person="p0"/><price>55</price></auction>
</auctions></site>
"""


@pytest.fixture(scope="module")
def engine():
    return GalaxEngine(DOC)


class TestEvaluation:
    def test_paths(self, engine):
        assert engine.execute("/site/people/person/name/text()") == \
            ["Alice", "Bob"]

    def test_descendants(self, engine):
        assert engine.execute("count(//person)") == [2.0]

    def test_predicates(self, engine):
        assert engine.execute(
            '/site/people/person[@id = "p1"]/name/text()') == ["Bob"]

    def test_flwor_join(self, engine):
        result = engine.execute(
            "for $p in /site/people/person, "
            "$a in /site/auctions/auction "
            "where $a/buyer/@person = $p/@id "
            "return $a/price/text()")
        assert sorted(result) == ["10", "55"]

    def test_constructor(self, engine):
        xml = engine.execute_to_xml(
            'for $p in /site/people/person[1] '
            'return <out n="{$p/name/text()}"/>')
        assert xml == '<out n="Alice"/>'

    def test_aggregates(self, engine):
        assert engine.execute(
            "sum(/site/auctions/auction/price/text())") == [65.0]

    def test_unbound_var(self, engine):
        with pytest.raises(QueryError):
            engine.execute("$nope")

    def test_arithmetic_and_logic(self, engine):
        assert engine.execute("(1 + 2) * 3")[0] == 9.0
        assert engine.execute(
            "for $p in /site/people/person "
            "where $p/age/text() > 26 and $p/age/text() < 30 "
            "return $p/name/text()") == ["Bob"]


class TestNaivete:
    """The profile that makes Galax's joins quadratic must hold."""

    def test_no_stats_no_indexes(self, engine):
        assert not hasattr(engine, "stats")
        assert not hasattr(engine, "_index_cache")

"""Tests for the XGrind baseline."""

import pytest

from repro.baselines.xgrind import XGrindDocument
from repro.errors import UnsupportedFeatureError
from repro.xmark.generator import generate_xmark

DOC = """
<site><people>
  <person id="p0"><name>Alice</name><age>31</age></person>
  <person id="p1"><name>Bob</name><age>27</age></person>
  <person id="p2"><name>Alfred</name><age>45</age></person>
</people></site>
"""


@pytest.fixture(scope="module")
def doc():
    return XGrindDocument.compress(DOC)


class TestQueries:
    def test_exists(self, doc):
        values = doc.query("/site/people/person/name")
        assert values == ["Alice", "Bob", "Alfred"]

    def test_exact_match_compressed(self, doc):
        assert doc.query("/site/people/person/name", "=", "Bob") == \
            ["Bob"]
        assert doc.query("/site/people/person/name", "=", "Zoe") == []

    def test_prefix_match_compressed(self, doc):
        values = doc.query("/site/people/person/name", "startswith",
                           "Al")
        assert values == ["Alice", "Alfred"]

    def test_attribute_query(self, doc):
        assert doc.query("/site/people/person/@id", "=", "p1") == ["p1"]

    def test_range_decompresses(self, doc):
        values = doc.query("/site/people/person/age", ">", "30")
        assert sorted(values) == ["31", "45"]

    def test_wrong_path_no_results(self, doc):
        assert doc.query("/site/people/name") == []


class TestLimitations:
    def test_no_descendant_axis(self, doc):
        with pytest.raises(UnsupportedFeatureError):
            doc.query("/site/*/person/name")

    def test_no_joins(self, doc):
        with pytest.raises(UnsupportedFeatureError):
            doc.unsupported("joins")

    def test_unknown_operator(self, doc):
        with pytest.raises(UnsupportedFeatureError):
            doc.query("/site/people/person/name", "~=", "x")


class TestCompression:
    def test_compression_factor_weakest(self):
        text = generate_xmark(0.02, seed=3)
        from repro.baselines.xmill import XMillArchive
        xgrind = XGrindDocument.compress(text)
        xmill = XMillArchive.compress(text)
        assert 0.0 < xgrind.compression_factor < \
            xmill.compression_factor

    def test_homomorphic_token_count(self, doc):
        # start/end per element plus one token per value: structure
        # order is preserved in place.
        assert doc.compressed_size > 0


class TestHomomorphism:
    def test_decompress_roundtrip(self):
        from repro.xmlio.dom import parse
        from repro.xmlio.writer import serialize
        rebuilt = XGrindDocument.compress(DOC).decompress()
        assert serialize(parse(rebuilt)) == serialize(parse(DOC))

    def test_decompress_xmark(self):
        from repro.xmlio.dom import parse
        from repro.xmlio.writer import serialize
        text = generate_xmark(0.005, seed=8)
        rebuilt = XGrindDocument.compress(text).decompress()
        assert serialize(parse(rebuilt)) == serialize(parse(text))

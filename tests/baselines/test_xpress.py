"""Tests for the XPRESS baseline."""

import pytest

from repro.baselines.xpress import (
    Interval,
    XPressDocument,
    path_interval,
    tag_intervals,
)
from repro.errors import UnsupportedFeatureError
from repro.xmark.generator import generate_xmark

DOC = """
<site><people>
  <person id="p0"><name>Alice</name><city>Paris</city></person>
  <person id="p1"><name>Bob</name><city>Lyon</city></person>
</people>
<regions><europe><item id="i0"><name>Lamp</name></item></europe>
</regions></site>
"""


class TestIntervals:
    def test_partition_of_unit_interval(self):
        intervals = tag_intervals({"a": 1, "b": 3})
        assert intervals["a"].low == 0.0
        assert intervals["b"].high == pytest.approx(1.0)
        assert intervals["a"].high == intervals["b"].low

    def test_narrowing_nests(self):
        intervals = tag_intervals({"a": 1, "b": 1})
        nested = intervals["b"].narrow(intervals["a"])
        assert intervals["b"].contains(nested)

    def test_reverse_encoding_suffix_containment(self):
        """The defining property: interval(/a/b/c) inside interval(b/c)
        inside interval(c) — what makes // queries containment tests."""
        intervals = tag_intervals({"a": 2, "b": 3, "c": 5})
        full = path_interval(["a", "b", "c"], intervals)
        suffix = path_interval(["b", "c"], intervals)
        leaf = path_interval(["c"], intervals)
        assert leaf.contains(suffix)
        assert suffix.contains(full)

    def test_unknown_tag(self):
        assert path_interval(["ghost"], tag_intervals({"a": 1})) is None

    def test_containment_reflexive(self):
        interval = Interval(0.25, 0.5)
        assert interval.contains(interval)


class TestQueries:
    @pytest.fixture(scope="class")
    def doc(self):
        return XPressDocument.compress(DOC)

    def test_rooted_path_count(self, doc):
        assert doc.match_path("/site/people/person") == 2

    def test_suffix_path_count(self, doc):
        # `//name` matches person names and the item name.
        assert doc.match_path("//name") == 3
        assert doc.match_path("//person/name") == 2

    def test_equality_compressed(self, doc):
        assert doc.values_equal("//person/city", "Paris") == 1
        assert doc.values_equal("//person/city", "Oslo") == 0

    def test_attribute_equality(self, doc):
        assert doc.values_equal("//person/@id", "p1") == 1

    def test_unsupported(self, doc):
        with pytest.raises(UnsupportedFeatureError):
            doc.unsupported("joins")
        with pytest.raises(UnsupportedFeatureError):
            doc.match_path("")


class TestCompression:
    def test_cf_between_xgrind_and_xmill(self):
        text = generate_xmark(0.02, seed=3)
        from repro.baselines.xgrind import XGrindDocument
        from repro.baselines.xmill import XMillArchive
        xpress = XPressDocument.compress(text)
        xgrind = XGrindDocument.compress(text)
        xmill = XMillArchive.compress(text)
        assert xgrind.compression_factor < xpress.compression_factor
        assert xpress.compression_factor < xmill.compression_factor

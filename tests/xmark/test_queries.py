"""The XMark query set parses and runs on both engines with equal
results — the correctness backbone of the Figure 7 comparison."""

import pytest

from repro.baselines.galax import GalaxEngine
from repro.query.engine import QueryEngine
from repro.query.parser import parse_query
from repro.storage.loader import load_document
from repro.xmark.generator import generate_xmark
from repro.xmark.queries import (
    FIGURE7_QUERIES,
    JOIN_QUERIES,
    XMARK_QUERIES,
    query_description,
    query_text,
)

ALL_QUERIES = sorted(XMARK_QUERIES)


@pytest.fixture(scope="module")
def xml_text():
    return generate_xmark(factor=0.01, seed=5)


@pytest.fixture(scope="module")
def xquec(xml_text):
    return QueryEngine(load_document(xml_text))


@pytest.fixture(scope="module")
def galax(xml_text):
    return GalaxEngine(xml_text)


class TestQuerySet:
    def test_figure7_and_joins_cover_registry(self):
        assert set(FIGURE7_QUERIES) | set(JOIN_QUERIES) == \
            set(XMARK_QUERIES)

    def test_descriptions_available(self):
        for query_id in ALL_QUERIES:
            assert query_description(query_id)

    @pytest.mark.parametrize("query_id", ALL_QUERIES)
    def test_parses(self, query_id):
        parse_query(query_text(query_id))


class TestEnginesAgree:
    @pytest.mark.parametrize("query_id", ALL_QUERIES)
    def test_same_results(self, query_id, xquec, galax):
        compressed = xquec.execute(query_text(query_id)).to_xml()
        uncompressed = galax.execute_to_xml(query_text(query_id))
        assert compressed == uncompressed, query_id

    def test_q1_returns_person0(self, xquec):
        result = xquec.execute(query_text("Q1"))
        assert len(result.items) == 1

    def test_q5_counts(self, xquec, galax):
        value = xquec.execute(query_text("Q5")).items[0]
        assert value == galax.execute(query_text("Q5"))[0]
        assert value >= 0

    def test_q8_join_uses_hash_index(self, xquec):
        result = xquec.execute(query_text("Q8"))
        assert result.stats.hash_joins >= 1

    def test_q14_finds_gold(self, xquec, galax):
        ours = xquec.execute(query_text("Q14")).items
        theirs = galax.execute(query_text("Q14"))
        assert ours == theirs

    def test_q20_brackets_sum_to_people(self, xquec, xml_text):
        from repro.xmlio.dom import parse
        out = xquec.execute(query_text("Q20")).to_xml()
        report = parse(out)
        total = sum(int(e.text()) for e in report.root.child_elements())
        people = len(list(parse(xml_text).root.descendants("person")))
        assert total == people

"""Tests for the xmlgen work-alike and dataset generators."""

import pytest

from repro.xmark.datasets import (
    generate_baseball,
    generate_shakespeare,
    generate_washington_course,
)
from repro.xmark.generator import generate_xmark
from repro.xmark.text_source import TextSource
from repro.xmlio.dom import parse


class TestTextSource:
    def test_deterministic(self):
        assert TextSource(1).sentence() == TextSource(1).sentence()

    def test_seed_changes_output(self):
        assert TextSource(1).paragraph() != TextSource(2).paragraph()

    def test_zipf_skew(self):
        words = TextSource(3).words(2000).split()
        counts = {}
        for w in words:
            counts[w] = counts.get(w, 0) + 1
        # "the" (rank 1) must dominate a tail word.
        assert counts.get("the", 0) > counts.get("crown", 0)

    def test_email_shape(self):
        source = TextSource(4)
        email = source.email("Ada Lovelace")
        assert email.startswith("ada.lovelace@")
        assert email.endswith(".example.com")


class TestXMarkGenerator:
    @pytest.fixture(scope="class")
    def doc(self):
        return parse(generate_xmark(factor=0.02, seed=1))

    def test_well_formed(self, doc):
        assert doc.root.name == "site"

    def test_top_level_sections(self, doc):
        names = [e.name for e in doc.root.child_elements()]
        assert names == ["regions", "categories", "people",
                         "open_auctions", "closed_auctions"]

    def test_six_regions(self, doc):
        regions = doc.root.child_elements("regions")[0]
        assert len(regions.child_elements()) == 6

    def test_people_have_ids_and_names(self, doc):
        people = doc.root.child_elements("people")[0]
        persons = people.child_elements("person")
        assert len(persons) >= 2
        assert persons[0].attribute("id") == "person0"
        assert persons[0].child_elements("name")[0].text()

    def test_references_resolve(self, doc):
        person_ids = {p.attribute("id")
                      for p in doc.root.descendants("person")}
        item_ids = {i.attribute("id")
                    for i in doc.root.descendants("item")}
        for closed in doc.root.descendants("closed_auction"):
            buyer = closed.child_elements("buyer")[0]
            assert buyer.attribute("person") in person_ids
            itemref = closed.child_elements("itemref")[0]
            assert itemref.attribute("item") in item_ids

    def test_factor_scales_size(self):
        small = generate_xmark(factor=0.01, seed=1)
        large = generate_xmark(factor=0.05, seed=1)
        assert len(large) > 3 * len(small)

    def test_deterministic(self):
        assert generate_xmark(0.01, seed=9) == generate_xmark(0.01,
                                                              seed=9)

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            generate_xmark(0)

    def test_factor_one_near_11mb(self):
        # The paper's XMark11 document is 11.3 MB; sanity-check the
        # calibration at a smaller factor (linear scaling).
        text = generate_xmark(factor=0.05, seed=42)
        estimated_full = len(text) / 0.05
        assert 6e6 < estimated_full < 20e6


class TestDatasetStandIns:
    def test_shakespeare_prose_heavy(self):
        doc = parse(generate_shakespeare(factor=0.05))
        lines = list(doc.root.descendants("line"))
        assert len(lines) > 50
        text = lines[0].text()
        assert len(text.split()) >= 6

    def test_washington_records(self):
        doc = parse(generate_washington_course(factor=0.01))
        courses = doc.root.child_elements("course")
        assert len(courses) >= 5
        assert courses[0].child_elements("credits")[0].text().isdigit()

    def test_baseball_numeric(self):
        doc = parse(generate_baseball(factor=0.05))
        players = list(doc.root.descendants("player"))
        assert len(players) >= 10
        hits = players[0].child_elements("hits")[0].text()
        assert hits.isdigit()

    def test_all_deterministic(self):
        assert generate_baseball(0.02) == generate_baseball(0.02)
        assert generate_shakespeare(0.02) == generate_shakespeare(0.02)
        assert generate_washington_course(0.02) == \
            generate_washington_course(0.02)

"""Multi-document collections: document("name") selects and joins."""

import pytest

from repro.baselines.galax import GalaxEngine
from repro.core.system import XQueCSystem
from repro.query.engine import QueryEngine
from repro.storage.loader import load_document

PEOPLE = """
<people>
  <person id="p0"><name>Alice</name><city>Paris</city></person>
  <person id="p1"><name>Bob</name><city>Lyon</city></person>
</people>
"""

ORDERS = """
<orders>
  <order buyer="p1"><total>10</total></order>
  <order buyer="p0"><total>25</total></order>
  <order buyer="p0"><total>5</total></order>
</orders>
"""

JOIN_QUERY = (
    'for $p in document("people.xml")/people/person, '
    '$o in document("orders.xml")/orders/order '
    "where $o/@buyer = $p/@id "
    'return <sale who="{$p/name/text()}">{$o/total/text()}</sale>')


@pytest.fixture(scope="module")
def system():
    return XQueCSystem.load_collection(
        {"people.xml": PEOPLE, "orders.xml": ORDERS})


class TestDocumentDispatch:
    def test_named_document_selected(self, system):
        result = system.query(
            'document("orders.xml")/orders/order/total/text()')
        assert sorted(result.items) == ["10", "25", "5"]

    def test_default_document_for_bare_paths(self, system):
        result = system.query("/people/person/name/text()")
        assert result.items == ["Alice", "Bob"]

    def test_unknown_document_falls_back_to_default(self, system):
        result = system.query(
            'document("ghost.xml")/people/person/name/text()')
        assert result.items == ["Alice", "Bob"]


class TestCrossDocumentJoin:
    def test_join_across_documents(self, system):
        result = system.query(JOIN_QUERY)
        xml = result.to_xml()
        assert xml.count("<sale") == 3
        assert 'who="Alice"' in xml and 'who="Bob"' in xml

    def test_join_uses_hash_index(self, system):
        assert system.query(JOIN_QUERY).stats.hash_joins >= 1

    def test_galax_agrees(self, system):
        galax = GalaxEngine(PEOPLE, collection={"people.xml": PEOPLE,
                                                "orders.xml": ORDERS})
        assert system.query(JOIN_QUERY).to_xml() == \
            galax.execute_to_xml(JOIN_QUERY)

    def test_materialization_uses_right_document(self, system):
        result = system.query(
            'document("orders.xml")/orders/order[1]')
        xml = result.to_xml()
        assert xml == '<order buyer="p1"><total>10</total></order>'

    def test_range_plan_on_named_document(self, system):
        result = system.query(
            'for $o in document("orders.xml")/orders/order '
            "where $o/total/text() >= 10 return $o/@buyer")
        assert sorted(result.items) == ["p0", "p1"]


class TestEngineConstruction:
    def test_repository_of(self):
        people_repo = load_document(PEOPLE)
        orders_repo = load_document(ORDERS)
        engine = QueryEngine(people_repo,
                             collection={"o": orders_repo})
        assert engine.repository_of("o") is orders_repo
        assert engine.repository_of(None) is people_repo
        assert engine.repository_of("nope") is people_repo

    def test_empty_collection_rejected(self):
        with pytest.raises(ValueError):
            XQueCSystem.load_collection({})

    def test_default_selection(self):
        system = XQueCSystem.load_collection(
            {"a": PEOPLE, "b": ORDERS}, default="b")
        assert system.query("/orders/order/total/text()").items == \
            ["10", "25", "5"]

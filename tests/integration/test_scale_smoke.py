"""Moderate-scale smoke test: load, persist, query, reconstruct."""

import pytest

from repro.core.system import XQueCSystem
from repro.query.engine import QueryEngine
from repro.query.context import EvaluationStats
from repro.storage.serialization import load_repository, save_repository
from repro.xmark.generator import generate_xmark
from repro.xmark.queries import XMARK_QUERIES, query_text
from repro.xmlio.dom import parse
from repro.xmlio.writer import serialize


@pytest.fixture(scope="module")
def xml_text():
    return generate_xmark(factor=0.03, seed=99)


@pytest.fixture(scope="module")
def system(xml_text):
    return XQueCSystem.load(
        xml_text,
        workload_queries=[q for _, q in XMARK_QUERIES.values()])


class TestScaleSmoke:
    def test_compression_band(self, system):
        assert 0.5 < system.compression_factor < 0.8

    def test_every_benchmark_query_runs(self, system):
        for query_id in sorted(XMARK_QUERIES):
            result = system.query(query_text(query_id))
            assert result.to_xml() is not None, query_id

    def test_document_reconstruction_exact(self, system, xml_text):
        engine = QueryEngine(system.repository)
        rebuilt = engine.materialize_node(0, EvaluationStats())
        assert serialize(rebuilt) == serialize(parse(xml_text))

    def test_persistence_roundtrip_at_scale(self, system, tmp_path):
        path = tmp_path / "scale.xqc"
        save_repository(system.repository, path)
        loaded = load_repository(path)
        query = query_text("Q8")
        assert QueryEngine(loaded).execute(query).to_xml() == \
            system.query(query).to_xml()

    def test_repository_file_smaller_than_document(self, system,
                                                   tmp_path, xml_text):
        path = tmp_path / "scale.xqc"
        save_repository(system.repository, path)
        # Page padding costs a little; still clearly below the source.
        assert path.stat().st_size < 0.75 * len(xml_text.encode())

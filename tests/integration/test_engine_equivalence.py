"""Property: the compressed engine and the naive DOM engine agree.

Hypothesis generates small random documents and queries from a
grammar covering the supported subset; every (document, query) pair
must produce byte-identical serialized results on both engines.  This
is the deepest correctness net in the suite: any divergence in path
semantics, predicate typing, compressed-domain comparison or join
planning shows up here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.galax import GalaxEngine
from repro.query.engine import QueryEngine
from repro.storage.loader import load_document
from repro.xmlio.dom import parse


# -- random document generation ------------------------------------------------

_CITY = st.sampled_from(["paris", "lyon", "rome", "oslo", "bern"])
_NAME = st.sampled_from(["ada", "bob", "cleo", "dan", "eve"])
_AGE = st.integers(1, 99)


@st.composite
def documents(draw) -> str:
    people = draw(st.lists(st.tuples(_NAME, _AGE, _CITY), min_size=0,
                           max_size=6))
    orders = draw(st.lists(st.tuples(st.integers(0, 5),
                                     st.integers(1, 500)),
                           min_size=0, max_size=6))
    parts = ["<db><people>"]
    for i, (name, age, city) in enumerate(people):
        parts.append(f'<person id="p{i}"><name>{name}</name>'
                     f"<age>{age}</age><city>{city}</city></person>")
    parts.append("</people><orders>")
    for buyer, total in orders:
        parts.append(f'<order buyer="p{buyer}">'
                     f"<total>{total}</total></order>")
    parts.append("</orders></db>")
    return "".join(parts)


# -- random query generation --------------------------------------------------

_COMPARE_OPS = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
_NAME_CONST = st.sampled_from(['"ada"', '"cleo"', '"zzz"', '"b"'])
_AGE_CONST = st.sampled_from(["0", "18", "50", "99"])


@st.composite
def queries(draw) -> str:
    kind = draw(st.integers(0, 6))
    if kind == 0:
        return draw(st.sampled_from([
            "/db/people/person/name/text()",
            "//person/@id",
            "/db/*",
            "//total/text()",
            "/db/people/person[2]/city/text()",
        ]))
    if kind == 1:
        op = draw(_COMPARE_OPS)
        constant = draw(_NAME_CONST)
        return ("for $p in /db/people/person "
                f"where $p/name/text() {op} {constant} "
                "return $p/name/text()")
    if kind == 2:
        op = draw(_COMPARE_OPS)
        constant = draw(_AGE_CONST)
        return ("for $p in /db/people/person "
                f"where $p/age/text() {op} {constant} "
                "return $p/@id")
    if kind == 3:
        return ("for $p in /db/people/person, "
                "$o in /db/orders/order "
                "where $o/@buyer = $p/@id "
                "return ($p/name/text(), $o/total/text())")
    if kind == 4:
        aggregate = draw(st.sampled_from(["count", "sum", "min",
                                          "max"]))
        if aggregate == "count":
            return "count(//person)"
        return f"{aggregate}(/db/orders/order/total/text())"
    if kind == 5:
        constant = draw(_NAME_CONST)
        return ("for $p in /db/people/person "
                f"where contains($p/name/text(), {constant}) "
                'return <hit city="{$p/city/text()}"/>')
    return ("for $p in /db/people/person "
            "let $o := for $x in /db/orders/order "
            "where $x/@buyer = $p/@id return $x "
            "return count($o)")


@settings(deadline=None, max_examples=120)
@given(documents(), queries())
def test_engines_agree(xml_text, query):
    repo = load_document(xml_text)
    compressed = QueryEngine(repo).execute(query).to_xml()
    uncompressed = GalaxEngine(xml_text).execute_to_xml(query)
    assert compressed == uncompressed, (query, xml_text)


@settings(deadline=None, max_examples=40)
@given(documents())
def test_repository_preserves_document(xml_text):
    """Materializing the root from the repository == the original."""
    from repro.query.context import EvaluationStats
    from repro.xmlio.writer import serialize
    repo = load_document(xml_text)
    engine = QueryEngine(repo)
    rebuilt = engine.materialize_node(0, EvaluationStats())
    assert serialize(rebuilt) == serialize(parse(xml_text))


EMPTYISH_DOCS = ["<db/>", "<db><people/></db>",
                 "<db><people/><orders/></db>"]


@pytest.mark.parametrize("xml_text", EMPTYISH_DOCS)
@pytest.mark.parametrize("query", [
    "count(//person)",
    "/db/people/person/name/text()",
    "for $p in //person where $p/age/text() > 5 return $p",
])
def test_empty_documents(xml_text, query):
    repo = load_document(xml_text)
    assert QueryEngine(repo).execute(query).to_xml() == \
        GalaxEngine(xml_text).execute_to_xml(query)

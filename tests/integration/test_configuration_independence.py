"""Property: query answers never depend on the compression config.

The §3 search changes *how* containers are compressed (algorithm,
shared source models, blobs); it must never change *what* queries
return.  Hypothesis draws random configurations — random algorithm per
random container group — and every query must match the default-config
answer bit for bit.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning.config import (
    CompressionConfiguration,
    ContainerGroup,
)
from repro.query.engine import QueryEngine
from repro.storage.loader import load_document

DOC = """
<site>
  <people>
    <person id="p0"><name>Alice Cooper</name><city>Paris</city>
      <age>31</age></person>
    <person id="p1"><name>Bob Dylan</name><city>Lyon</city>
      <age>27</age></person>
    <person id="p2"><name>Carol King</name><city>Paris</city>
      <age>45</age></person>
  </people>
  <sales>
    <sale buyer="p2"><total>19</total></sale>
    <sale buyer="p0"><total>7</total></sale>
  </sales>
</site>
"""

STRING_PATHS = [
    "/site/people/person/@id",
    "/site/people/person/name/#text",
    "/site/people/person/city/#text",
    "/site/sales/sale/@buyer",
]

QUERIES = [
    "/site/people/person/name/text()",
    'for $p in /site/people/person where $p/city/text() = "Paris" '
    "return $p/@id",
    'for $p in /site/people/person where $p/name/text() < "Carol" '
    "return $p/name/text()",
    "for $p in /site/people/person, $s in /site/sales/sale "
    "where $s/@buyer = $p/@id return $p/name/text()",
    "for $p in /site/people/person order by $p/age/text() descending "
    "return $p/@id",
    "sum(/site/sales/sale/total/text())",
]


@pytest.fixture(scope="module")
def baseline():
    engine = QueryEngine(load_document(DOC))
    return {query: engine.execute(query).to_xml() for query in QUERIES}


_ALGORITHMS = st.sampled_from(["alm", "huffman", "hutucker",
                               "arithmetic", "bzip2", "zlib"])


@st.composite
def configurations(draw) -> CompressionConfiguration:
    """A random partition of the string containers + algorithms."""
    group_of = {path: draw(st.integers(0, 2)) for path in STRING_PATHS}
    groups = []
    for group_id in set(group_of.values()):
        members = tuple(p for p, g in group_of.items()
                        if g == group_id)
        groups.append(ContainerGroup(members, draw(_ALGORITHMS)))
    return CompressionConfiguration(groups)


@settings(deadline=None, max_examples=40)
@given(configuration=configurations())
def test_any_configuration_same_answers(baseline, configuration):
    repo = load_document(DOC, configuration=configuration)
    engine = QueryEngine(repo)
    for query, expected in baseline.items():
        assert engine.execute(query).to_xml() == expected, \
            (query, configuration)

"""Figure 5 — hand-built physical plan for XMark Q9.

The paper's Figure 5 shows Q9 evaluated as a three-way join over
*compressed* attributes (person/@id, buyer/@person, itemref/@item),
navigating with Parent/Child between top-down and bottom-up phases,
and decompressing only the final person/item names.

This test rebuilds that plan from the physical operators directly and
checks it against the declarative engine's answer — proving the
operator algebra really composes into the paper's QEP shapes.
"""

from __future__ import annotations

import pytest

from repro.query.context import EvaluationStats
from repro.query.engine import QueryEngine
from repro.query.physical import (
    Child,
    ContScan,
    Decompress,
    HashJoin,
    MergeJoin,
    StructureSummaryAccess,
    TextContent,
)
from repro.storage.loader import load_document
from repro.xmark.generator import generate_xmark

PERSON_ID = "/site/people/person/@id"
BUYER_REF = "/site/closed_auctions/closed_auction/buyer/@person"
ITEM_REF = "/site/closed_auctions/closed_auction/itemref/@item"
EUROPE_ITEM_ID = "/site/regions/europe/item/@id"
PERSON_NAME = "/site/people/person/name/#text"
ITEM_NAME = "/site/regions/europe/item/name/#text"


@pytest.fixture(scope="module")
def repo():
    return load_document(generate_xmark(factor=0.02, seed=11))


def figure5_rows(repo, stats):
    """The Figure 5 plan, bottom-up, joining compressed attributes."""
    # Bottom phase: scan the two reference containers of the closed
    # auctions.  Container scans come out in value order, so the
    # pairing with the person ids can be a MergeJoin without sorting.
    buyer_scan = ContScan(repo, BUYER_REF, "buyer_node", "buyer_ref",
                          stats)
    person_scan = ContScan(repo, PERSON_ID, "person", "person_id",
                           stats)
    # person/@id and buyer/@person were compressed with different
    # source models here (no workload grouping), so the merge keys are
    # the decoded strings; under a §3 configuration grouping the two
    # containers, the compressed bytes themselves would be the keys.
    buyers = MergeJoin(
        person_scan, buyer_scan,
        lambda r: r["person_id"].decode(stats),
        lambda r: r["buyer_ref"].decode(stats)).rows()

    # The buyer element's parent is the closed_auction; fetch its
    # itemref/@item (Child + attribute content).
    from repro.query.physical import Parent
    auctions = Parent(buyers, repo, "buyer_node", "auction").rows()
    itemrefs = Child(auctions, repo, "auction", "itemref",
                     tag="itemref", stats=stats).rows()
    item_scan = ContScan(repo, ITEM_REF, "itemref_owner", "item_ref",
                         stats)
    ref_by_owner = {row["itemref_owner"].node_id: row["item_ref"]
                    for row in item_scan}
    for row in itemrefs:
        row["item_ref"] = ref_by_owner[row["itemref"].node_id]

    # Join against the European items on @id (hash join: itemrefs are
    # no longer in value order after the navigation steps).
    europe_items = ContScan(repo, EUROPE_ITEM_ID, "item", "item_id",
                            stats)
    matched = HashJoin(
        itemrefs, europe_items.rows(),
        lambda r: r["item_ref"].decode(stats),
        lambda r: r["item_id"].decode(stats), stats).rows()

    # Top: navigate to the two <name> elements and fetch their text,
    # decompressing only here (Figure 5's topmost operators).
    named = Child(matched, repo, "person", "person_name_el",
                  tag="name", stats=stats)
    named = TextContent(named, repo, "person_name_el", "person_name",
                        PERSON_NAME, stats)
    named = Child(named, repo, "item", "item_name_el", tag="name",
                  stats=stats)
    named = TextContent(named, repo, "item_name_el", "item_name",
                        ITEM_NAME, stats)
    final = Decompress(named, ["person_name", "item_name"],
                       stats).rows()
    return final


def engine_pairs(repo):
    engine = QueryEngine(repo)
    result = engine.execute(
        "for $p in /site/people/person, "
        "$t in /site/closed_auctions/closed_auction, "
        "$t2 in /site/regions/europe/item "
        "where $t/buyer/@person = $p/@id "
        "and $t/itemref/@item = $t2/@id "
        'return <r person="{$p/name/text()}" '
        'item="{$t2/name/text()}"/>')
    pairs = []
    for element in result.items:
        pairs.append((element.attribute("person"),
                      element.attribute("item")))
    return sorted(pairs)


class TestFigure5Plan:
    def test_plan_matches_engine(self, repo):
        stats = EvaluationStats()
        rows = figure5_rows(repo, stats)
        plan_pairs = sorted((row["person_name"], row["item_name"])
                            for row in rows)
        assert plan_pairs == engine_pairs(repo)
        assert plan_pairs, "the join should produce matches"

    def test_decompression_only_at_the_top(self, repo):
        """Joins run on compressed values; names decode only for the
        surviving rows (plus the merge keys in this ungrouped setup)."""
        stats = EvaluationStats()
        rows = figure5_rows(repo, stats)
        assert stats.hash_joins >= 2  # HashJoin + TextContent joins
        # The two Decompress columns decode exactly once per output row;
        # CompressedItem memoisation means the count is bounded.
        assert stats.decompressions > 0

    def test_merge_join_needs_no_sort(self, repo):
        """Container scans arrive in value order (the §4 property)."""
        stats = EvaluationStats()
        keys = [row["person_id"].decode(stats) for row in
                ContScan(repo, PERSON_ID, "n", "person_id", stats)]
        assert keys == sorted(keys)

"""Tests for Database/Session/PreparedQuery — the serving layer."""

import pytest

from repro.core.system import XQueCSystem
from repro.errors import PlanVerificationError, QueryError
from repro.lint.diagnostics import PlanDiagnostic
from repro.query.engine import QueryEngine, QueryResult
from repro.query.options import ExecutionOptions
from repro.service.session import Database, PreparedQuery, Session
from repro.storage.loader import load_document
from repro.storage.serialization import save_repository

DOC = """
<library>
  <book isbn="1"><title>Dune</title><price>9.99</price></book>
  <book isbn="2"><title>Foundation</title><price>7.5</price></book>
  <book isbn="3"><title>Hyperion</title><price>12.0</price></book>
</library>
"""

QUERY = ('for $b in /library/book where $b/title = "Dune" '
         "return $b/price/text()")


@pytest.fixture(scope="module")
def repository():
    return load_document(DOC)


@pytest.fixture
def session(repository):
    return Session(repository)


class TestExecute:
    def test_returns_query_result(self, session):
        result = session.execute("/library/book/title")
        assert isinstance(result, QueryResult)
        assert len(result) == 3

    def test_sequence_protocol(self, session):
        result = session.execute("/library/book/title/text()")
        assert result[0] == "Dune"
        assert list(result) == ["Dune", "Foundation", "Hyperion"]

    def test_matches_bare_engine(self, repository, session):
        engine = QueryEngine(repository)
        assert session.execute(QUERY).values() == \
            engine.execute(QUERY).values()

    def test_counts_executions(self, session):
        session.execute(QUERY)
        session.execute(QUERY)
        assert session.metrics.counters()["session.executions"] == 2


class TestPlanCache:
    def test_warm_hit_skips_parse_and_verify(self, repository,
                                             monkeypatch):
        session = Session(repository)
        parses = []
        import repro.service.session as session_module
        real_parse = session_module.parse_query
        monkeypatch.setattr(
            session_module, "parse_query",
            lambda text: parses.append(text) or real_parse(text))
        verifies = []
        real_verify = session.engine.verify
        session.engine.verify = \
            lambda ast: verifies.append(ast) or real_verify(ast)
        first = session.execute(QUERY)
        warm = [session.execute(QUERY) for _ in range(3)]
        assert [r.values() for r in warm] == \
            [first.values() for _ in range(3)]
        assert len(parses) == 1
        assert len(verifies) == 1
        counters = session.metrics.counters()
        assert counters["cache.plan.hit"] == 3
        assert counters["cache.plan.miss"] == 1
        assert counters["session.parses"] == 1

    def test_whitespace_variants_share_one_slot(self, session):
        session.execute("/library/book/title")
        session.execute("  /library/book/title \n")
        counters = session.metrics.counters()
        assert counters["cache.plan.hit"] == 1
        assert len(session.plan_cache) == 1

    def test_use_plan_cache_false_bypasses(self, repository):
        session = Session(repository)
        options = ExecutionOptions(use_plan_cache=False)
        session.execute(QUERY, options)
        session.execute(QUERY, options)
        counters = session.metrics.counters()
        assert counters.get("cache.plan.hit", 0) == 0
        assert counters["session.parses"] == 2
        assert len(session.plan_cache) == 0

    def test_verification_error_raises_at_prepare(self, repository,
                                                  monkeypatch):
        session = Session(repository)
        bad = PlanDiagnostic.make(
            "plan.ineq-order-agnostic", "Select",
            "injected error for the prepare gate test")
        monkeypatch.setattr(QueryEngine, "verify",
                            lambda self, ast: [bad])
        with pytest.raises(PlanVerificationError):
            session.prepare("/library/book")
        monkeypatch.undo()
        # The failed plan was never cached: prepare now succeeds.
        prepared = session.prepare("/library/book")
        assert prepared.diagnostics == []

    def test_invalidate_caches_forces_cold_run(self, session):
        session.execute(QUERY)
        session.invalidate_caches()
        session.execute(QUERY)
        counters = session.metrics.counters()
        assert counters.get("cache.plan.hit", 0) == 0
        assert counters["cache.plan.miss"] == 2


class TestPreparedQuery:
    def test_exposes_plan(self, session):
        prepared = session.prepare(QUERY)
        assert isinstance(prepared, PreparedQuery)
        assert prepared.text == QUERY
        assert prepared.ast is not None
        assert prepared.diagnostics == []

    def test_rerun_with_constant_rebinding(self, repository,
                                           monkeypatch):
        session = Session(repository)
        parses = []
        import repro.service.session as session_module
        real_parse = session_module.parse_query
        monkeypatch.setattr(
            session_module, "parse_query",
            lambda text: parses.append(text) or real_parse(text))
        prepared = session.prepare(
            "for $b in /library/book where $b/title = $t "
            "return $b/price/text()")
        assert prepared.run(bindings={"t": "Dune"}).items == ["9.99"]
        assert prepared.run(bindings={"t": "Hyperion"}).items == \
            ["12.0"]
        assert len(parses) == 1

    def test_prepare_accepts_parsed_expression(self, session):
        from repro.query.parser import parse_query
        ast = parse_query("/library/book/title/text()")
        prepared = session.prepare(ast)
        assert prepared.text is None
        assert prepared.run().items == ["Dune", "Foundation",
                                        "Hyperion"]


class TestBlockCache:
    def test_warm_materialization_hits_block_cache(self, repository):
        session = Session(repository)
        session.execute("/library/book/title").to_xml()
        cold_hits = session.metrics.counters().get("cache.block.hit",
                                                   0)
        session.execute("/library/book/title").to_xml()
        warm_hits = session.metrics.counters()["cache.block.hit"]
        assert warm_hits > cold_hits

    def test_use_block_cache_false_runs_raw_engine(self, repository):
        session = Session(repository)
        options = ExecutionOptions(use_block_cache=False)
        result = session.execute("/library/book/title", options)
        assert result._engine is not session.engine
        assert result.values() == \
            session.execute("/library/book/title").values()

    def test_resolutions_are_cached(self, repository):
        session = Session(repository)
        session.execute(QUERY)
        session.execute("/library/book")
        counters = session.metrics.counters()
        assert counters["cache.block.miss"] >= 1


class TestRecording:
    def test_journal_session_reuses_one_handle(self, repository,
                                               tmp_path):
        journal_path = tmp_path / "session.workload.jsonl"
        with Session(repository, journal=journal_path) as session:
            for _ in range(3):
                session.execute(QUERY)
            journal = session.recorder.journal
            assert journal.opens == 1
            records = journal.records()
        assert len(records) == 3
        # The journalled query is the original text, not an AST label.
        assert {r["query"] for r in records} == {QUERY}
        assert session.recorder.records_written == 3

    def test_record_false_skips_journalling(self, repository,
                                            tmp_path):
        session = Session(repository,
                          journal=tmp_path / "skip.jsonl")
        session.execute(QUERY, ExecutionOptions(record=False))
        assert session.recorder.records_written == 0

    def test_record_true_without_recorder_raises(self, session):
        with pytest.raises(QueryError, match="no workload recorder"):
            session.execute(QUERY, ExecutionOptions(record=True))


class TestExecuteMany:
    def test_serial_path_preserves_order(self, session):
        queries = ["/library/book/title/text()",
                   "/library/book/price/text()", QUERY]
        results = session.execute_many(queries, max_workers=1)
        assert [r.items for r in results] == [
            ["Dune", "Foundation", "Hyperion"],
            ["9.99", "7.5", "12.0"],
            ["9.99"],
        ]

    def test_rejects_shared_telemetry(self, session):
        from repro.obs.telemetry import Telemetry
        options = ExecutionOptions(telemetry=Telemetry(enabled=True))
        with pytest.raises(ValueError, match="execute_many"):
            session.execute_many([QUERY, QUERY], options=options)


class TestAnalyze:
    def test_explain_analyze_text(self, session):
        text = session.explain_analyze(QUERY)
        assert "EXPLAIN ANALYZE" in text

    def test_explain_does_not_execute(self, session):
        plan = session.explain(QUERY)
        assert "ContAccess" in plan or "Select" in plan


class TestDecompress:
    def test_roundtrips_document(self, session):
        text = session.decompress()
        assert text.startswith("<library>")
        assert "<title>Dune</title>" in text


class TestDatabase:
    def test_from_xml_and_sessions_share_caches(self):
        database = Database.from_xml(DOC)
        first = database.session()
        second = database.session()
        first.execute(QUERY)
        second.execute(QUERY)
        counters = database.metrics.counters()
        assert counters["cache.plan.hit"] == 1
        assert counters["cache.plan.miss"] == 1
        assert first.plan_cache is database.plan_cache
        assert second.block_cache is database.block_cache

    def test_open_serialized_repository(self, repository, tmp_path):
        path = tmp_path / "lib.xqc"
        save_repository(repository, path)
        database = Database.open(path)
        session = database.session()
        assert session.execute(QUERY).items == ["9.99"]


class TestSystemFacade:
    def test_query_goes_through_session(self, repository):
        system = XQueCSystem(repository)
        system.query(QUERY)
        system.query(QUERY)
        counters = system.session.metrics.counters()
        assert counters["cache.plan.hit"] == 1

    def test_prepare_on_system(self, repository):
        system = XQueCSystem(repository)
        prepared = system.prepare(QUERY)
        assert prepared.run().items == ["9.99"]

    def test_load_collection_still_joins(self):
        other = "<catalog><entry><ref>Dune</ref></entry></catalog>"
        system = XQueCSystem.load_collection(
            {"lib": DOC, "cat": other}, default="lib")
        result = system.query(
            'for $e in document("cat")/catalog/entry, '
            "$b in /library/book "
            "where $b/title = $e/ref return $b/price/text()")
        assert result.items == ["9.99"]

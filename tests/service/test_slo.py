"""Tests for serving SLOs: query classes, latency histograms, report."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.query.parser import parse_query
from repro.service.session import Session
from repro.service.slo import (
    LATENCY_PREFIX,
    LatencyObjective,
    classify_query,
    observe_latency,
    render_slo_report,
    slo_report,
)
from repro.storage.loader import load_document

DOC = """
<library>
  <book isbn="1"><title>Dune</title><price>9.99</price></book>
  <book isbn="2"><title>Foundation</title><price>7.5</price></book>
  <book isbn="3"><title>Hyperion</title><price>12.0</price></book>
</library>
"""


@pytest.fixture(scope="module")
def repository():
    return load_document(DOC)


@pytest.fixture
def session(repository):
    return Session(repository)


def classify(text: str) -> str:
    return classify_query(parse_query(text))


class TestClassifyQuery:
    def test_point_equality_only_where(self):
        assert classify(
            'for $b in /library/book where $b/title = "Dune" '
            "return $b") == "point"

    def test_scan_range_predicate(self):
        assert classify(
            "for $b in /library/book where $b/price > 8.0 "
            "return $b") == "scan"

    def test_join_two_for_clauses(self):
        assert classify(
            "for $a in /library/book for $b in /library/book "
            "where $a/price = $b/price return $a") == "join"

    def test_path_bare(self):
        assert classify("/library/book/title") == "path"

    def test_path_flwor_without_where(self):
        assert classify(
            "for $b in /library/book return $b/title") == "path"

    def test_scan_path_with_predicate(self):
        assert classify("/library/book[price > 8]") == "scan"

    def test_construct(self):
        assert classify("<shelf>{ /library/book }</shelf>") \
            == "construct"


class TestObserveLatency:
    def test_files_into_class_histogram(self):
        metrics = MetricsRegistry()
        observe_latency(metrics, "scan", 1_000_000)
        observe_latency(metrics, "scan", 3_000_000)
        hist = metrics.histograms()[LATENCY_PREFIX + "scan"]
        assert hist["count"] == 2
        assert metrics.counters()["slo.served.scan"] == 2


class TestLatencyObjective:
    def test_parse(self):
        objective = LatencyObjective.parse("point:p95:5")
        assert objective == LatencyObjective("point", 95.0, 5.0)

    def test_parse_rejects_bad_specs(self):
        for spec in ("point:95:5", "point:p95", "nope", "a:b:c:d"):
            with pytest.raises(ValueError):
                LatencyObjective.parse(spec)


class TestSloReport:
    def test_session_populates_class_histograms(self, session):
        session.execute("/library/book/title")
        session.execute(
            "for $b in /library/book where $b/price > 8.0 "
            "return $b/title")
        report = session.slo_report()
        assert report["classes"]["path"]["count"] == 1
        assert report["classes"]["scan"]["count"] == 1
        for row in report["classes"].values():
            assert row["p50_ms"] is not None
            assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
            assert row["max_ms"] > 0

    def test_execute_many_records_every_worker(self, session):
        queries = ["/library/book/title"] * 8
        session.execute_many(queries, max_workers=4)
        report = session.slo_report()
        assert report["classes"]["path"]["count"] == 8

    def test_failed_runs_still_observed(self, session):
        with pytest.raises(Exception):
            session.execute("/library/book[price > ")  # parse error
        # parse failures never reach _run; a plan that fails during
        # evaluation still lands in the histogram
        before = session.slo_report()["classes"]
        session.execute("/library/book/title")
        after = session.slo_report()["classes"]
        assert after["path"]["count"] == \
            before.get("path", {}).get("count", 0) + 1

    def test_cache_gauges(self, session):
        session.execute("/library/book/title")
        session.execute("/library/book/title")
        report = session.slo_report()
        plan = report["caches"]["plan"]
        assert plan["hit"] >= 1
        assert plan["miss"] >= 1
        assert 0.0 < plan["hit_rate"] < 1.0

    def test_objective_checks(self, session):
        session.execute("/library/book/title")
        generous = LatencyObjective("path", 95.0, 60_000.0)
        impossible = LatencyObjective("path", 95.0, 0.000001)
        absent = LatencyObjective("join", 95.0, 100.0)
        report = session.slo_report(
            [generous, impossible, absent])
        checks = {(c["class"], c["target_ms"]): c
                  for c in report["objectives"]}
        assert checks[("path", 60_000.0)]["ok"] is True
        assert checks[("path", 0.000001)]["ok"] is False
        # an objective over an unobserved class is unmet-by-absence
        assert checks[("join", 100.0)]["ok"] is False
        assert checks[("join", 100.0)]["actual_ms"] is None

    def test_empty_registry_report(self):
        report = slo_report(MetricsRegistry())
        assert report["classes"] == {}
        assert report["caches"]["plan"]["hit_rate"] is None


class TestRenderSloReport:
    def test_renders_tables_and_verdicts(self, session):
        session.execute("/library/book/title")
        text = render_slo_report(session.slo_report(
            [LatencyObjective("path", 95.0, 60_000.0)]))
        assert "-- serving latency by query class --" in text
        assert "path" in text
        assert "-- cache hit rates --" in text
        assert "[OK]" in text

    def test_renders_empty(self):
        text = render_slo_report(slo_report(MetricsRegistry()))
        assert "no latencies recorded" in text


class TestLatencyObjectiveValidation:
    def test_rejects_unknown_class(self):
        with pytest.raises(ValueError, match="unknown query class"):
            LatencyObjective.parse("lookup:p95:5")

    def test_error_lists_valid_classes(self):
        with pytest.raises(ValueError, match="point.*scan.*join"):
            LatencyObjective.parse("lookup:p95:5")

    def test_rejects_p0_and_p101(self):
        for bad in ("point:p0:5", "point:p101:5", "point:p-3:5"):
            with pytest.raises(ValueError, match="percentile"):
                LatencyObjective.parse(bad)

    def test_accepts_p100_and_fractions(self):
        assert LatencyObjective.parse("point:p100:5").percentile \
            == 100.0
        assert LatencyObjective.parse("point:p99.9:5").percentile \
            == 99.9

    def test_rejects_nonpositive_ms(self):
        for bad in ("point:p95:0", "point:p95:-2"):
            with pytest.raises(ValueError, match="positive"):
                LatencyObjective.parse(bad)

    def test_rejects_unparsable_parts(self):
        with pytest.raises(ValueError, match="percentile"):
            LatencyObjective.parse("point:pxx:5")
        with pytest.raises(ValueError, match="millisecond"):
            LatencyObjective.parse("point:p95:fast")

    def test_errors_name_the_spec(self):
        with pytest.raises(ValueError, match="lookup:p95:5"):
            LatencyObjective.parse("lookup:p95:5")


class TestRollingReport:
    def test_report_carries_rolling_windows_and_qps(self, session):
        session.execute("/library/book/title")
        session.execute(
            'for $b in /library/book where $b/title = "Dune" '
            "return $b")
        report = session.slo_report()
        assert set(report["rolling"]) == {"path", "point"}
        row = report["rolling"]["path"]
        assert row["count"] == 1
        assert row["qps"] > 0
        assert row["p95_ms"] is not None
        assert report["qps"] > 0

    def test_render_includes_rolling_table(self, session):
        session.execute("/library/book/title")
        text = render_slo_report(session.slo_report())
        assert "rolling window" in text
        assert "QPS" in text

    def test_empty_registry_has_no_rolling_rows(self):
        report = slo_report(MetricsRegistry())
        assert report["rolling"] == {}
        assert report["qps"] == 0.0

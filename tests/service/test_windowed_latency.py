"""Windowed serving latencies under a concurrent execute_many batch.

The satellite check for the telemetry plane's thread-safety claims:
four workers hammering one session must leave the per-class rolling
windows (a) filed under the *correct* class and (b) with **no lost
increments** — window counts, lifetime histogram counts and the
``slo.served.*`` counters must all agree with the number of queries
actually served.
"""

from repro.service.session import Database
from repro.service.slo import LATENCY_PREFIX

DOC = """
<library>
  <book isbn="1"><title>Dune</title><price>9.99</price></book>
  <book isbn="2"><title>Foundation</title><price>7.5</price></book>
  <book isbn="3"><title>Hyperion</title><price>12.0</price></book>
</library>
"""

POINT = 'for $b in /library/book where $b/title = "Dune" return $b'
SCAN = "for $b in /library/book where $b/price > 8.0 return $b"
PATH = "/library/book/title"


class TestConcurrentWindows:
    def test_no_lost_increments_across_four_workers(self):
        database = Database.from_xml(DOC)
        session = database.session()
        rounds = 6
        batch = [POINT, SCAN, PATH, POINT, SCAN, PATH, PATH, POINT]
        for _ in range(rounds):
            results = session.execute_many(batch, max_workers=4)
            assert len(results) == len(batch)

        expected = {
            "point": rounds * batch.count(POINT),
            "scan": rounds * batch.count(SCAN),
            "path": rounds * batch.count(PATH),
        }
        windows = database.metrics.windows()
        histograms = database.metrics.histograms()
        counters = database.metrics.counters()
        for query_class, count in expected.items():
            name = LATENCY_PREFIX + query_class
            assert windows[name]["count"] == count, query_class
            assert histograms[name]["count"] == count, query_class
            assert counters[f"slo.served.{query_class}"] == count
        # nothing got misfiled into a class nobody ran
        total = sum(expected.values())
        assert counters["session.executions"] == total

    def test_windows_feed_the_rolling_report(self):
        database = Database.from_xml(DOC)
        session = database.session()
        session.execute_many([POINT, SCAN, PATH, PATH],
                             max_workers=4)
        report = session.slo_report()
        assert set(report["rolling"]) == {"point", "scan", "path"}
        assert report["rolling"]["path"]["count"] == 2
        assert report["qps"] > 0
        for row in report["rolling"].values():
            assert row["p95_ms"] is not None
            assert row["p95_ms"] >= 0

    def test_window_percentiles_bound_the_lifetime_max(self):
        database = Database.from_xml(DOC)
        session = database.session()
        session.execute_many([PATH] * 8, max_workers=4)
        window = database.metrics.windows()[LATENCY_PREFIX + "path"]
        hist = database.metrics.histograms()[LATENCY_PREFIX + "path"]
        assert window["count"] == hist["count"] == 8
        assert window["max"] == hist["max"]
        assert window["p99"] <= window["max"]

"""Tests for ExecutionOptions and the legacy-keyword shims."""

import pytest

from repro.core.system import XQueCSystem
from repro.obs.telemetry import Telemetry
from repro.query.engine import QueryEngine
from repro.query.options import ExecutionOptions, coerce_options
from repro.service.session import Session
from repro.storage.loader import load_document

DOC = """
<library>
  <book isbn="1"><title>Dune</title><price>9.99</price></book>
  <book isbn="2"><title>Foundation</title><price>7.5</price></book>
</library>
"""


@pytest.fixture(scope="module")
def repository():
    return load_document(DOC)


class TestExecutionOptions:
    def test_defaults(self):
        options = ExecutionOptions()
        assert options.telemetry is None
        assert options.telemetry_enabled is False
        assert options.record is None
        assert options.use_plan_cache is True
        assert options.use_block_cache is True
        assert options.bindings is None

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecutionOptions().telemetry_enabled = True

    def test_with_telemetry(self):
        telemetry = Telemetry(enabled=True)
        options = ExecutionOptions().with_telemetry(telemetry)
        assert options.telemetry is telemetry

    def test_resolve_telemetry_prefers_given(self):
        telemetry = Telemetry(enabled=True)
        options = ExecutionOptions(telemetry=telemetry)
        assert options.resolve_telemetry() is telemetry

    def test_resolve_telemetry_creates_enabled(self):
        assert ExecutionOptions(
            telemetry_enabled=True).resolve_telemetry().enabled
        assert not ExecutionOptions().resolve_telemetry().enabled
        assert ExecutionOptions().resolve_telemetry(
            default_enabled=True).enabled

    def test_binding_environment_wraps_scalars(self):
        options = ExecutionOptions(
            bindings={"who": "Alice", "both": ["a", "b"]})
        env = options.binding_environment()
        assert env == {"who": ["Alice"], "both": ["a", "b"]}

    def test_binding_environment_empty(self):
        assert ExecutionOptions().binding_environment() == {}


class TestCoerceOptions:
    def test_none_becomes_defaults(self):
        options = coerce_options(None, {}, "f")
        assert options == ExecutionOptions()

    def test_passthrough(self):
        given = ExecutionOptions(telemetry_enabled=True)
        assert coerce_options(given, {}, "f") is given

    def test_legacy_telemetry_warns_and_folds(self):
        telemetry = Telemetry(enabled=True)
        with pytest.warns(DeprecationWarning, match="f\\(telemetry"):
            options = coerce_options(None, {"telemetry": telemetry},
                                     "f")
        assert options.telemetry is telemetry

    def test_unknown_keyword_raises(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            coerce_options(None, {"bogus": 1}, "f")

    def test_double_telemetry_raises(self):
        telemetry = Telemetry(enabled=True)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="both"):
                coerce_options(ExecutionOptions(telemetry=telemetry),
                               {"telemetry": telemetry}, "f")


class TestLegacyShims:
    """The old ``telemetry=`` keyword still works on every entry
    point, behind a DeprecationWarning naming the caller."""

    def test_engine_execute(self, repository):
        engine = QueryEngine(repository)
        telemetry = Telemetry(enabled=True)
        with pytest.warns(DeprecationWarning,
                          match="QueryEngine.execute\\(telemetry"):
            result = engine.execute("/library/book/title",
                                    telemetry=telemetry)
        assert result.telemetry is telemetry
        assert len(result) == 2

    def test_system_query(self, repository):
        system = XQueCSystem(repository)
        telemetry = Telemetry(enabled=True)
        with pytest.warns(DeprecationWarning,
                          match="XQueCSystem.query\\(telemetry"):
            result = system.query("/library/book/title",
                                  telemetry=telemetry)
        assert result.telemetry is telemetry

    def test_session_execute(self, repository):
        session = Session(repository)
        telemetry = Telemetry(enabled=True)
        with pytest.warns(DeprecationWarning,
                          match="Session.execute\\(telemetry"):
            result = session.execute("/library/book/title",
                                     telemetry=telemetry)
        assert result.telemetry is telemetry

    def test_unknown_keyword_still_typeerror(self, repository):
        engine = QueryEngine(repository)
        with pytest.raises(TypeError):
            engine.execute("/library/book", wrong_kwarg=1)

    def test_new_api_emits_no_warning(self, repository, recwarn):
        engine = QueryEngine(repository)
        engine.execute("/library/book/title",
                       ExecutionOptions(
                           telemetry=Telemetry(enabled=True)))
        deprecations = [w for w in recwarn.list
                        if issubclass(w.category, DeprecationWarning)]
        assert not deprecations

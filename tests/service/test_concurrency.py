"""Concurrency tests: one Session shared by worker threads.

The serving contract: ``execute_many`` over N threads returns exactly
what serial execution returns, and no metric increment is ever lost —
the session's registry, the caches and the workload journal are all
thread-safe.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.session import Database, Session
from repro.xmark.generator import generate_xmark
from repro.xmark.queries import query_text

QUERY_IDS = ("Q1", "Q2", "Q5", "Q8")


@pytest.fixture(scope="module")
def repository():
    from repro.storage.loader import load_document
    return load_document(generate_xmark(factor=0.005, seed=42))


@pytest.fixture(scope="module")
def serial_results(repository):
    session = Session(repository)
    return {qid: session.execute(query_text(qid)).to_xml()
            for qid in QUERY_IDS}


class TestExecuteMany:
    def test_parallel_matches_serial_on_xmark(self, repository,
                                              serial_results):
        session = Session(repository)
        queries = [query_text(qid) for qid in QUERY_IDS] * 3
        results = session.execute_many(queries, max_workers=4)
        assert len(results) == len(queries)
        expected = [serial_results[qid] for qid in QUERY_IDS] * 3
        assert [r.to_xml() for r in results] == expected

    def test_no_lost_session_counter_increments(self, repository):
        session = Session(repository)
        queries = [query_text(qid) for qid in QUERY_IDS] * 5
        session.execute_many(queries, max_workers=4)
        counters = session.metrics.counters()
        assert counters["session.executions"] == len(queries)
        assert counters["session.prepares"] == len(queries)
        # Every textual prepare either missed (first time) or hit.
        assert counters["cache.plan.hit"] \
            + counters["cache.plan.miss"] == len(queries)
        assert counters["cache.plan.miss"] == len(QUERY_IDS)

    def test_threads_share_warm_plan_cache(self, repository):
        session = Session(repository)
        session.execute_many([query_text("Q1")] * 8, max_workers=4)
        counters = session.metrics.counters()
        assert counters["cache.plan.miss"] == 1
        assert counters["cache.plan.hit"] == 7

    def test_concurrent_sessions_share_database_caches(self):
        database = Database.from_xml(
            generate_xmark(factor=0.003, seed=7))
        sessions = [database.session() for _ in range(4)]

        def run(session):
            return session.execute(query_text("Q1")).to_xml()

        with ThreadPoolExecutor(max_workers=4) as pool:
            outputs = list(pool.map(run, sessions))
        assert len(set(outputs)) == 1
        counters = database.metrics.counters()
        assert counters["cache.plan.hit"] \
            + counters["cache.plan.miss"] == 4

    def test_recording_batch_journals_every_run(self, repository,
                                                tmp_path):
        session = Session(repository,
                          journal=tmp_path / "batch.jsonl")
        queries = [query_text(qid) for qid in QUERY_IDS] * 2
        session.execute_many(queries, max_workers=4)
        journal = session.recorder.journal
        assert session.recorder.records_written == len(queries)
        assert len(journal.records()) == len(queries)
        assert journal.opens == 1

    def test_per_run_enabled_telemetry_in_parallel(self, repository,
                                                   serial_results):
        from repro.query.options import ExecutionOptions
        session = Session(repository)
        results = session.execute_many(
            [query_text("Q1")] * 6, max_workers=3,
            options=ExecutionOptions(telemetry_enabled=True))
        assert all(r.telemetry.enabled for r in results)
        assert [r.to_xml() for r in results] == \
            [serial_results["Q1"]] * 6


class TestRegistryThreadSafety:
    def test_no_lost_counter_adds(self):
        registry = MetricsRegistry()
        threads = 8
        per_thread = 2000

        def worker():
            for _ in range(per_thread):
                registry.add("stress.counter")

        pool = [threading.Thread(target=worker)
                for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert registry.counters()["stress.counter"] == \
            threads * per_thread

    def test_concurrent_get_or_create_yields_one_counter(self):
        registry = MetricsRegistry()
        seen = []

        def worker():
            seen.append(registry.counter("shared.name"))

        pool = [threading.Thread(target=worker) for _ in range(16)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert len({id(counter) for counter in seen}) == 1

    def test_merge_accumulates_counters_and_histograms(self):
        target = MetricsRegistry()
        target.add("shared", 1)
        source = MetricsRegistry()
        source.add("shared", 2)
        source.add("only.source", 5)
        source.histogram("lat").observe(1.0)
        source.histogram("lat").observe(3.0)
        target.merge(source)
        counters = target.counters()
        assert counters["shared"] == 3
        assert counters["only.source"] == 5
        assert target.histograms()["lat"]["count"] == 2

"""Tests for the serving layer's plan and block caches."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.cache import (
    BlockCache,
    PlanCache,
    normalize_query_text,
)


class TestNormalizeQueryText:
    def test_collapses_whitespace_runs(self):
        assert normalize_query_text("for  $x in\n  /a \t return $x") \
            == "for $x in /a return $x"

    def test_strips_ends(self):
        assert normalize_query_text("  /a/b  ") == "/a/b"

    def test_identity_on_normalized_text(self):
        text = "for $x in /a return $x"
        assert normalize_query_text(text) == text


class TestPlanCache:
    def test_miss_then_hit(self):
        metrics = MetricsRegistry()
        cache = PlanCache(4, metrics=metrics)
        assert cache.get("q") is None
        cache.put("q", "plan")
        assert cache.get("q") == "plan"
        counters = metrics.counters()
        assert counters["cache.plan.miss"] == 1
        assert counters["cache.plan.hit"] == 1

    def test_lru_eviction_order(self):
        metrics = MetricsRegistry()
        cache = PlanCache(2, metrics=metrics)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert metrics.counters()["cache.plan.evictions"] == 1

    def test_invalidate_single_key(self):
        cache = PlanCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.invalidate("a")
        assert "a" not in cache and "b" in cache

    def test_invalidate_all(self):
        cache = PlanCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.invalidate()
        assert len(cache) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(0)


class TestBlockCache:
    def test_miss_then_hit_and_bytes(self):
        metrics = MetricsRegistry()
        cache = BlockCache(1000, metrics=metrics)
        key = ("value", "/a/#text", 0)
        assert cache.get(key) is None
        cache.put(key, "decoded", 100)
        assert cache.get(key) == "decoded"
        assert cache.used_bytes == 100
        counters = metrics.counters()
        assert counters["cache.block.miss"] == 1
        assert counters["cache.block.hit"] == 1

    def test_budget_eviction_is_lru(self):
        metrics = MetricsRegistry()
        cache = BlockCache(250, metrics=metrics)
        cache.put(("v", 1), "one", 100)
        cache.put(("v", 2), "two", 100)
        cache.get(("v", 1))  # refresh; ("v", 2) becomes LRU
        cache.put(("v", 3), "three", 100)
        assert cache.get(("v", 2)) is None
        assert cache.get(("v", 1)) == "one"
        assert cache.get(("v", 3)) == "three"
        assert cache.used_bytes == 200
        assert metrics.counters()["cache.block.evictions"] == 1

    def test_oversize_entry_not_cached(self):
        metrics = MetricsRegistry()
        cache = BlockCache(50, metrics=metrics)
        cache.put(("v", 1), "x" * 100, 100)
        assert len(cache) == 0
        assert metrics.counters()["cache.block.oversize"] == 1

    def test_replacing_entry_recharges_bytes(self):
        cache = BlockCache(1000)
        cache.put(("v", 1), "a", 100)
        cache.put(("v", 1), "bb", 200)
        assert cache.used_bytes == 200
        assert len(cache) == 1

    def test_invalidate_resets_bytes(self):
        cache = BlockCache(1000)
        cache.put(("v", 1), "a", 100)
        cache.invalidate()
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_falsy_values_are_cache_hits(self):
        # An empty decoded string is a legitimate cached block.
        cache = BlockCache(1000)
        cache.put(("v", 1), "", 10)
        assert cache.get(("v", 1)) == ""

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            BlockCache(0)

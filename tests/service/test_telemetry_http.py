"""The /metrics + /health + /ready + /slowlog endpoint."""

import json
from urllib.error import HTTPError
from urllib.request import urlopen

import pytest

from repro.obs.export import parse_prometheus
from repro.service.session import Database
from repro.service.slowlog import SlowQueryLog

DOC = """
<library>
  <book isbn="1"><title>Dune</title><price>9.99</price></book>
  <book isbn="2"><title>Foundation</title><price>7.5</price></book>
</library>
"""


@pytest.fixture
def database():
    return Database.from_xml(
        DOC, slow_log=SlowQueryLog(threshold_ms=0.0,
                                   exemplar_rate=1))


def get(url: str):
    with urlopen(url, timeout=5.0) as response:
        return response.status, response.read()


class TestEndpoints:
    def test_metrics_round_trips_the_registry(self, database):
        session = database.session()
        for _ in range(3):
            session.execute("/library/book/title")
        with database.serve_telemetry() as server:
            status, body = get(server.url + "/metrics")
        assert status == 200
        scraped = parse_prometheus(body.decode())
        assert scraped["counters"]["session.executions"] == 3
        assert "slo.latency_ns.path" in scraped["windows"]
        assert scraped["gauges"]["telemetry.uptime_s"] > 0

    def test_metrics_content_type(self, database):
        with database.serve_telemetry() as server:
            with urlopen(server.url + "/metrics") as response:
                assert "version=0.0.4" in \
                    response.headers["Content-Type"]

    def test_health(self, database):
        with database.serve_telemetry() as server:
            status, body = get(server.url + "/health")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["uptime_s"] > 0

    def test_ready_true_when_loaded(self, database):
        assert database.ready() is True
        with database.serve_telemetry() as server:
            status, body = get(server.url + "/ready")
        assert status == 200
        assert json.loads(body)["ready"] is True

    def test_slowlog_serves_the_ring(self, database):
        session = database.session()
        for _ in range(4):
            session.execute("/library/book/title")
        with database.serve_telemetry() as server:
            status, body = get(server.url + "/slowlog?n=2")
        document = json.loads(body)
        assert document["enabled"] is True
        assert len(document["records"]) == 2
        assert document["records"][-1]["class"] == "path"

    def test_unknown_route_404s(self, database):
        with database.serve_telemetry() as server:
            with pytest.raises(HTTPError) as error:
                get(server.url + "/nope")
            assert error.value.code == 404


class TestLifecycle:
    def test_double_serve_raises(self, database):
        server = database.serve_telemetry()
        try:
            with pytest.raises(RuntimeError, match="already"):
                database.serve_telemetry()
        finally:
            database.stop_telemetry()

    def test_serve_after_close_rebinds(self, database):
        first = database.serve_telemetry()
        database.stop_telemetry()
        assert first.closed
        second = database.serve_telemetry()
        try:
            assert not second.closed
            status, _ = get(second.url + "/health")
            assert status == 200
        finally:
            database.stop_telemetry()

    def test_close_is_idempotent(self, database):
        server = database.serve_telemetry()
        server.close()
        server.close()
        assert server.closed

    def test_requests_are_counted(self, database):
        with database.serve_telemetry() as server:
            get(server.url + "/health")
            get(server.url + "/health")
        assert database.metrics.counters()[
            "telemetry.http.requests"] == 2

"""Sharded serving plane: parity, admission, routing, shutdown.

The load-bearing guarantee is the differential oracle: for every
XMark query, sharded execution (coordinator -> forked worker ->
compressed result frame back) is **byte-identical** to single-process
``Session.execute`` — at shard counts 1, 2 and 4.
"""

import multiprocessing
import os

import pytest

from repro.errors import AdmissionError, QuerySyntaxError, ShardError
from repro.partitioning.sharding import ShardAssignment
from repro.service.session import Session
from repro.service.shards import (
    AdmissionController,
    Route,
    ShardedDatabase,
    query_route_keys,
    resolve_route,
)
from repro.query.parser import parse_query
from repro.storage.loader import load_document
from repro.xmark.generator import generate_xmark
from repro.xmark.queries import XMARK_QUERIES, query_text

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sharded serving requires the fork start method")

QUERIES = {qid: query_text(qid) for qid in XMARK_QUERIES}


@pytest.fixture(scope="module")
def repository():
    return load_document(generate_xmark(factor=0.002, seed=1))


@pytest.fixture(scope="module")
def oracle(repository):
    """Single-process reference output for every XMark query."""
    session = Session(repository)
    return {qid: session.execute(text).to_xml()
            for qid, text in QUERIES.items()}


@pytest.fixture(scope="module", params=[1, 2, 4])
def sharded(repository, request):
    with ShardedDatabase(repository, shard_count=request.param,
                         queries=list(QUERIES.values())) as database:
        yield database


class TestParity:
    def test_every_xmark_query_byte_identical(self, sharded, oracle):
        for qid, text in QUERIES.items():
            received = sharded.execute(text, client="parity")
            assert received.to_xml() == oracle[qid], \
                f"{qid} diverged at {sharded.shard_count} shards"

    def test_merged_stats_sane(self, sharded, oracle):
        totals = {}
        for text in QUERIES.values():
            received = sharded.execute(text, client="stats")
            for name, value in received.stats.as_dict().items():
                assert value >= 0
                totals[name] = totals.get(name, 0) + value
        assert totals["decompressions"] > 0
        assert totals["nodes_visited"] > 0
        # The coordinator's running aggregate covers at least this
        # batch (the fixture is shared, so >=, not ==).
        aggregate = sharded.aggregate_stats.as_dict()
        for name, value in totals.items():
            assert aggregate[name] >= value

    def test_execute_many_preserves_order(self, sharded, oracle):
        ids = list(QUERIES)
        received = sharded.execute_many([QUERIES[qid] for qid in ids],
                                        client="batch")
        for qid, result in zip(ids, received):
            assert result.to_xml() == oracle[qid]

    def test_shipping_accounting_recorded(self, sharded):
        counters = sharded.metrics.counters()
        assert counters.get("shipping.wire_bytes", 0) > 0
        assert counters.get("shipping.plain_bytes", 0) > 0


class TestRouting:
    def _assignment(self):
        return ShardAssignment(
            2, [["/site/people"], ["/site/open_auctions",
                                   "/site/closed_auctions"]],
            [1.0, 2.0])

    def test_single_subtree_query_not_cross_shard(self):
        keys = query_route_keys(parse_query(
            "for $p in /site/people/person return $p/name"))
        assert keys == ["/site/people"]
        route = resolve_route(self._assignment(), keys, "q")
        assert route == Route(0, False, ("/site/people",))

    def test_join_query_is_cross_shard(self):
        keys = query_route_keys(parse_query(
            "for $p in /site/people/person, "
            "$a in /site/open_auctions/open_auction "
            "where $a/@id = $p/@id return $p/name"))
        assert set(keys) == {"/site/people", "/site/open_auctions"}
        route = resolve_route(self._assignment(), keys, "q")
        assert route.primary == 0  # the driving for-clause's shard
        assert route.cross_shard is True

    def test_prefix_root_touches_every_owner(self):
        keys = query_route_keys(parse_query("/site"))
        assert keys == ["/site"]
        route = resolve_route(self._assignment(), keys, "q")
        assert route.cross_shard is True

    def test_descendant_root_falls_back_to_hash(self):
        keys = query_route_keys(parse_query("//item"))
        assert keys == []
        route = resolve_route(self._assignment(), keys, "fallback")
        assert route.cross_shard is False
        assert route == resolve_route(self._assignment(), keys,
                                      "fallback")

    def test_route_cache_is_stable(self, sharded):
        text = QUERIES["Q1"]
        assert sharded.route(text) is sharded.route(text)


class TestAdmission:
    def test_global_limit(self):
        admission = AdmissionController(max_inflight=2, per_client=2)
        admission.acquire("a")
        admission.acquire("b")
        with pytest.raises(AdmissionError):
            admission.acquire("c")
        admission.release("a")
        admission.acquire("c")
        assert admission.inflight == 2

    def test_per_client_quota(self):
        admission = AdmissionController(max_inflight=10, per_client=1)
        admission.acquire("a")
        with pytest.raises(AdmissionError):
            admission.acquire("a")
        admission.acquire("b")  # other clients unaffected
        admission.release("a")
        admission.acquire("a")

    def test_release_never_goes_negative(self):
        admission = AdmissionController()
        admission.release("ghost")
        assert admission.inflight == 0

    def test_front_door_refuses_before_touching_workers(self,
                                                        repository):
        # An unstarted coordinator: admission must reject before any
        # worker (there are none) is involved.
        admission = AdmissionController(max_inflight=1, per_client=1)
        database = ShardedDatabase(repository, shard_count=2,
                                   admission=admission)
        admission.acquire("elsewhere")
        with pytest.raises(AdmissionError):
            database.execute(QUERIES["Q1"], client="me")

    def test_quota_scoped_to_client(self, sharded):
        sharded.admission.acquire("greedy")
        held = sharded.admission.per_client - 1
        for _ in range(held):
            sharded.admission.acquire("greedy")
        try:
            with pytest.raises(AdmissionError):
                sharded.execute(QUERIES["Q1"], client="greedy")
            result = sharded.execute(QUERIES["Q1"], client="modest")
            assert len(result.values) >= 0
        finally:
            for _ in range(held + 1):
                sharded.admission.release("greedy")


class TestWorkerFailures:
    def test_syntax_error_rehydrates_by_type(self, sharded):
        worker = sharded._workers[0]
        with pytest.raises(QuerySyntaxError):
            worker.request(("execute", "for $x in ((("))
        # The worker survives a failed query.
        assert worker.request(("ping",)) == worker.process.pid

    def test_coordinator_rejects_unknown_op_as_shard_error(self,
                                                           sharded):
        with pytest.raises(ShardError):
            sharded._workers[0].request(("no-such-op",))

    def test_cross_shard_counter_advances(self, repository):
        assignment = ShardAssignment(
            2, [["/site/people"],
                ["/site/open_auctions", "/site/closed_auctions",
                 "/site/regions", "/site/categories"]],
            [1.0, 4.0])
        with ShardedDatabase(repository,
                             assignment=assignment) as database:
            database.execute(QUERIES["Q1"])   # people only
            before = database.metrics.counters().get(
                "coordinator.cross_shard_queries", 0)
            database.execute(QUERIES["Q8"])   # people x auctions join
            after = database.metrics.counters().get(
                "coordinator.cross_shard_queries", 0)
        assert before == 0
        assert after == 1


class TestLifecycle:
    def test_clean_shutdown_leaves_no_orphans(self, repository):
        database = ShardedDatabase(repository, shard_count=2).start()
        processes = [worker.process
                     for worker in database._workers]
        pids = [process.pid for process in processes]
        assert database.ready()
        database.close()
        for process in processes:
            assert not process.is_alive()
            assert process.exitcode == 0
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_gather_metrics_folds_per_shard_counters(self, sharded):
        sharded.execute_many(list(QUERIES.values()), client="fold")
        sharded.gather_metrics()
        counters = sharded.metrics.counters()
        executions = [
            counters.get(f"shard.{i}.session.executions", 0)
            for i in range(sharded.shard_count)]
        assert sum(executions) > 0
        gauges = sharded.metrics.gauges()
        for shard in range(sharded.shard_count):
            assert gauges.get(f"shard.{shard}.shard.pid", 0) > 0

    def test_invalidate_reaches_workers(self, sharded):
        sharded.execute(QUERIES["Q1"], client="inv")
        sharded.invalidate_caches()
        # Still serves correctly after a cold restart of the caches.
        received = sharded.execute(QUERIES["Q1"], client="inv")
        assert received.to_xml() is not None

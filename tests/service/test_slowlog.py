"""Slow-query log: threshold gating, fingerprints, exemplars."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.query.parser import parse_query
from repro.service.session import Database
from repro.service.slowlog import (
    SLOWLOG_SUFFIX,
    SlowQueryLog,
    default_slowlog_path,
    plan_fingerprint,
    query_fingerprint,
    snapshot_cache_counters,
)

DOC = """
<library>
  <book isbn="1"><title>Dune</title><price>9.99</price></book>
  <book isbn="2"><title>Foundation</title><price>7.5</price></book>
</library>
"""


class TestFingerprints:
    def test_query_fingerprint_ignores_whitespace(self):
        a = query_fingerprint("/library/book/title")
        b = query_fingerprint("  /library/book/title  ")
        assert a == b
        assert len(a) == 12

    def test_query_fingerprint_none(self):
        assert query_fingerprint(None) is None

    def test_plan_fingerprint_groups_spellings(self):
        a = plan_fingerprint(parse_query("/library/book"))
        b = plan_fingerprint(parse_query("/library/book"))
        assert a == b and len(a) == 12

    def test_plan_fingerprint_survives_garbage(self):
        assert plan_fingerprint(object()) is None


class TestValidation:
    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            SlowQueryLog(threshold_ms=-1.0)

    def test_rejects_zero_exemplar_rate(self):
        with pytest.raises(ValueError, match="exemplar rate"):
            SlowQueryLog(exemplar_rate=0)

    def test_rejects_zero_keep(self):
        with pytest.raises(ValueError, match="keep"):
            SlowQueryLog(keep=0)


class TestThresholdGating:
    def test_under_threshold_records_nothing(self):
        log = SlowQueryLog(threshold_ms=1000.0)
        record = log.maybe_record(
            query="/library/book", ast=None, query_class="path",
            wall_ns=1_000_000)  # 1 ms
        assert record is None
        assert log.recent() == []

    def test_over_threshold_records(self):
        log = SlowQueryLog(threshold_ms=1.0)
        record = log.maybe_record(
            query="/library/book", ast=parse_query("/library/book"),
            query_class="path", wall_ns=5_000_000)  # 5 ms
        assert record is not None
        assert record["class"] == "path"
        assert record["wall_ms"] == pytest.approx(5.0)
        assert record["query_fingerprint"]
        assert record["plan_fingerprint"]
        assert record["error"] is False
        assert log.recent() == [record]

    def test_ring_is_bounded(self):
        log = SlowQueryLog(threshold_ms=0.0, keep=3)
        for i in range(10):
            log.maybe_record(query=f"q{i}", ast=None,
                             query_class="other", wall_ns=1)
        recent = log.recent()
        assert len(recent) == 3
        assert [r["query"] for r in recent] == ["q7", "q8", "q9"]

    def test_recent_n(self):
        log = SlowQueryLog(threshold_ms=0.0)
        for i in range(5):
            log.maybe_record(query=f"q{i}", ast=None,
                             query_class="other", wall_ns=1)
        assert [r["query"] for r in log.recent(2)] == ["q3", "q4"]


class TestSampling:
    def test_one_in_n(self):
        log = SlowQueryLog(exemplar_rate=3)
        decisions = [log.maybe_sample() is not None
                     for _ in range(9)]
        assert decisions == [True, False, False] * 3

    def test_rate_one_samples_every_run(self):
        log = SlowQueryLog(exemplar_rate=1)
        assert all(log.maybe_sample() is not None for _ in range(4))

    def test_sampled_telemetry_is_enabled(self):
        telemetry = SlowQueryLog(exemplar_rate=1).maybe_sample()
        assert telemetry.enabled


class TestJournalPersistence:
    def test_records_append_to_jsonl(self, tmp_path):
        path = tmp_path / "lib.slowlog.jsonl"
        with SlowQueryLog(path, threshold_ms=0.0) as log:
            log.maybe_record(query="/library/book", ast=None,
                             query_class="path", wall_ns=123)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["query"] == "/library/book"
        assert record["wall_ns"] == 123

    def test_default_path_rides_along_the_repository(self):
        path = default_slowlog_path("/x/lib.xqc")
        assert path.name == "lib.xqc" + SLOWLOG_SUFFIX


class TestMetricsWiring:
    def test_gauges_and_counters(self):
        metrics = MetricsRegistry()
        log = SlowQueryLog(threshold_ms=7.0, exemplar_rate=2,
                           metrics=metrics)
        assert metrics.gauges()["slowlog.threshold_ms"] == 7.0
        log.maybe_sample()
        log.maybe_record(query="q", ast=None, query_class="other",
                         wall_ns=10_000_000)
        counters = metrics.counters()
        assert counters["slowlog.sampled"] == 1
        assert counters["slowlog.records"] == 1


class TestSessionIntegration:
    def test_slow_run_is_recorded_with_exemplar(self):
        log = SlowQueryLog(threshold_ms=0.0, exemplar_rate=1)
        database = Database.from_xml(DOC, slow_log=log)
        session = database.session()
        result = session.execute("/library/book/title")
        assert len(result.items) == 2
        [record] = log.recent()
        assert record["class"] == "path"
        assert record["wall_ns"] > 0
        assert record["exemplar"] is not None
        assert record["exemplar"]["operators"]
        assert record["cache_deltas"] is not None
        assert record["cache_deltas"]["plan.miss"] == 1

    def test_fast_runs_stay_unrecorded(self):
        log = SlowQueryLog(threshold_ms=60_000.0)
        database = Database.from_xml(DOC, slow_log=log)
        database.session().execute("/library/book/title")
        assert log.recent() == []

    def test_failed_run_is_flagged(self):
        log = SlowQueryLog(threshold_ms=0.0, exemplar_rate=1)
        database = Database.from_xml(DOC, slow_log=log)
        session = database.session()
        with pytest.raises(Exception):
            session.execute("for $x in")  # malformed
        # parse failures never reach _run; a runtime failure would be
        # flagged — assert the log did not record the parse error.
        assert all(r["error"] is False for r in log.recent())

    def test_cache_snapshot_helper(self):
        metrics = MetricsRegistry()
        metrics.add("cache.plan.hit", 2)
        snapshot = snapshot_cache_counters(metrics)
        assert snapshot["cache.plan.hit"] == 2
        assert snapshot["cache.block.miss"] == 0

"""Direct tests for DocumentStatistics."""

from repro.storage.statistics import DocumentStatistics


class TestDocumentStatistics:
    def test_record_element(self):
        stats = DocumentStatistics()
        stats.record_element("person", "/site/people/person", 3)
        stats.record_element("person", "/site/people/person", 4)
        stats.record_element("site", "/site", 1)
        assert stats.element_count == 3
        assert stats.cardinality("person") == 2
        assert stats.path_count("/site/people/person") == 2
        assert stats.max_depth == 4

    def test_fanout(self):
        stats = DocumentStatistics()
        stats.record_element("people", "/site/people", 2)
        stats.record_child("people")
        stats.record_child("people")
        stats.record_child("people")
        assert stats.average_fanout("people") == 3.0

    def test_fanout_unknown_tag(self):
        assert DocumentStatistics().average_fanout("ghost") == 0.0

    def test_cardinality_unknown(self):
        stats = DocumentStatistics()
        assert stats.cardinality("nope") == 0
        assert stats.path_count("/nope") == 0

    def test_counters_start_empty(self):
        stats = DocumentStatistics()
        assert stats.element_count == 0
        assert stats.attribute_count == 0
        assert stats.text_count == 0
        assert stats.max_depth == 0

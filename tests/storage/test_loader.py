"""Tests for the loader/compressor and the repository it builds."""

import pytest

from repro.errors import ContainerNotFoundError, NodeNotFoundError
from repro.storage.loader import infer_value_type, load_document

DOC = """
<site>
  <people>
    <person id="p0"><name>Alice</name><age>31</age></person>
    <person id="p1"><name>Bob</name><age>27</age></person>
  </people>
  <regions>
    <item id="i0"><price>12.5</price><name>Lamp</name></item>
  </regions>
</site>
"""


@pytest.fixture(scope="module")
def repo():
    return load_document(DOC)


class TestTypeInference:
    def test_ints(self):
        assert infer_value_type(["1", "22", "-3"]) == "int"

    def test_floats(self):
        assert infer_value_type(["1.5", "2.0", "-0.25"]) == "float"

    def test_mixed_int_float_stays_string(self):
        # "2" is not a canonical float ("2.0" is): a float codec would
        # decode it as "2.0", which is lossy.  Mixed containers used to
        # infer "float" and then crash at seal time.
        assert infer_value_type(["1.5", "2", "-0.25"]) == "string"

    def test_strings(self):
        assert infer_value_type(["1", "two"]) == "string"

    def test_non_canonical_stays_string(self):
        assert infer_value_type(["007"]) == "string"

    def test_empty(self):
        assert infer_value_type([]) == "string"


class TestStructure(object):
    def test_node_count(self, repo):
        # site, people, 2 person, 2 name, 2 age, regions, item, price, name
        assert len(repo.structure) == 12

    def test_root_record(self, repo):
        root = repo.structure.record(0)
        assert root.parent_id == -1
        assert repo.tag_of(0) == "site"

    def test_document_order_ids(self, repo):
        assert repo.tag_of(1) == "people"
        assert repo.tag_of(2) == "person"

    def test_children_navigation(self, repo):
        people = repo.structure.children_of(0)[0]
        persons = repo.structure.children_of(people)
        assert [repo.tag_of(p) for p in persons] == ["person", "person"]

    def test_descendants_via_post_numbers(self, repo):
        descendants = repo.structure.descendants_of(0)
        assert len(descendants) == 11

    def test_levels(self, repo):
        assert repo.structure.record(0).level == 0
        assert repo.structure.record(2).level == 2

    def test_missing_node(self, repo):
        with pytest.raises(NodeNotFoundError):
            repo.structure.record(999)


class TestContainers:
    def test_one_container_per_path(self, repo):
        paths = repo.container_paths()
        assert "/site/people/person/@id" in paths
        assert "/site/people/person/name/#text" in paths
        assert "/site/regions/item/price/#text" in paths

    def test_numeric_typing(self, repo):
        assert repo.container(
            "/site/people/person/age/#text").value_type == "int"
        assert repo.container(
            "/site/regions/item/price/#text").value_type == "float"
        assert repo.container(
            "/site/people/person/name/#text").value_type == "string"

    def test_values_roundtrip(self, repo):
        container = repo.container("/site/people/person/name/#text")
        values = sorted(v for _, v in container.scan_decoded())
        assert values == ["Alice", "Bob"]

    def test_missing_container(self, repo):
        with pytest.raises(ContainerNotFoundError):
            repo.container("/nope")


class TestValuePointers:
    def test_text_of(self, repo):
        name_ids = repo.summary.resolve(
            [("child", "site"), ("child", "people"), ("child", "person"),
             ("child", "name")])[0].extent
        assert [repo.text_of(n) for n in name_ids] == ["Alice", "Bob"]

    def test_attribute_of(self, repo):
        person_ids = repo.summary.resolve(
            [("child", "site"), ("child", "people"),
             ("child", "person")])[0].extent
        assert [repo.attribute_of(p, "id") for p in person_ids] == \
            ["p0", "p1"]

    def test_attribute_missing(self, repo):
        assert repo.attribute_of(0, "nope") is None

    def test_full_text_concatenates_subtree(self, repo):
        person = repo.summary.resolve(
            [("child", "site"), ("child", "people"),
             ("child", "person")])[0].extent[0]
        assert repo.full_text_of(person) == "Alice31"


class TestSummary:
    def test_distinct_paths_counted_once(self, repo):
        # person appears twice in the document, once in the summary:
        # site, people, person, @id, name, #text, age, #text, regions,
        # item, @id, price, #text, name, #text = 15 distinct paths.
        assert repo.summary.node_count() == 15

    def test_descendant_resolution(self, repo):
        nodes = repo.summary.resolve([("descendant", "name")])
        assert len(nodes) == 2  # person/name and item/name

    def test_wildcard(self, repo):
        nodes = repo.summary.resolve([("child", "site"), ("child", "*")])
        assert {n.step for n in nodes} == {"people", "regions"}

    def test_extents_in_document_order(self, repo):
        person = repo.summary.resolve([("descendant", "person")])[0]
        assert person.extent == sorted(person.extent)


class TestStatistics:
    def test_cardinality(self, repo):
        assert repo.statistics.cardinality("person") == 2
        assert repo.statistics.cardinality("site") == 1

    def test_fanout(self, repo):
        assert repo.statistics.average_fanout("people") == 2.0

    def test_counts(self, repo):
        assert repo.statistics.element_count == 12
        assert repo.statistics.attribute_count == 3
        # Alice, 31, Bob, 27, 12.5, Lamp
        assert repo.statistics.text_count == 6


class TestSizeReport:
    def test_components_positive(self, repo):
        report = repo.size_report()
        assert report.name_dictionary > 0
        assert report.structure_records > 0
        assert report.container_data > 0
        assert report.summary > 0
        assert report.total > 0

    def test_essential_smaller_than_total(self, repo):
        report = repo.size_report()
        assert report.essential < report.total

    def test_compression_factor_bounded(self, repo):
        assert repo.compression_factor < 1.0


class TestConfigurationSealing:
    def test_grouped_containers_share_codec(self):
        from repro.partitioning.config import (
            CompressionConfiguration,
            ContainerGroup,
        )
        config = CompressionConfiguration(groups=[
            ContainerGroup(
                container_paths=("/site/people/person/name/#text",
                                 "/site/regions/item/name/#text"),
                algorithm="huffman"),
        ])
        repo = load_document(DOC, configuration=config)
        c1 = repo.container("/site/people/person/name/#text")
        c2 = repo.container("/site/regions/item/name/#text")
        assert c1.codec is c2.codec
        assert c1.codec.name == "huffman"
        # Ungrouped containers still get defaults.
        assert repo.container(
            "/site/people/person/age/#text").codec.name == "integer"

"""Tests for the paged file layer, including corruption injection."""

import pytest

from repro.errors import PageError
from repro.storage.pages import (
    PAGE_SIZE,
    PT_DATA,
    PageFile,
    PagedReader,
    PagedWriter,
)


@pytest.fixture
def pagefile(tmp_path):
    with PageFile(tmp_path / "test.pages", create=True) as pf:
        yield pf


class TestPageFile:
    def test_allocate_and_roundtrip(self, pagefile):
        page = pagefile.allocate()
        pagefile.write_page(page, b"hello")
        page_type, payload = pagefile.read_page(page)
        assert page_type == PT_DATA
        assert payload == b"hello"

    def test_page_count_and_size(self, pagefile):
        assert pagefile.page_count == 0
        pagefile.allocate()
        pagefile.allocate()
        assert pagefile.page_count == 2
        assert pagefile.size_bytes == 2 * PAGE_SIZE

    def test_oversized_payload_rejected(self, pagefile):
        page = pagefile.allocate()
        with pytest.raises(PageError):
            pagefile.write_page(page, b"x" * PAGE_SIZE)

    def test_unallocated_page_rejected(self, pagefile):
        with pytest.raises(PageError):
            pagefile.write_page(3, b"data")
        with pytest.raises(PageError):
            pagefile.read_page(0)

    def test_reopen_existing(self, tmp_path):
        path = tmp_path / "persist.pages"
        with PageFile(path, create=True) as pf:
            page = pf.allocate()
            pf.write_page(page, b"persisted")
        with PageFile(path) as pf:
            assert pf.page_count == 1
            assert pf.read_page(0)[1] == b"persisted"

    def test_checksum_detects_corruption(self, tmp_path):
        path = tmp_path / "corrupt.pages"
        with PageFile(path, create=True) as pf:
            page = pf.allocate()
            pf.write_page(page, b"important data")
        # Flip a byte in the payload region.
        with open(path, "r+b") as f:
            f.seek(20)
            byte = f.read(1)
            f.seek(20)
            f.write(bytes([byte[0] ^ 0xFF]))
        with PageFile(path) as pf:
            with pytest.raises(PageError):
                pf.read_page(0)


class TestPagedStream:
    def test_small_stream(self, pagefile):
        writer = PagedWriter(pagefile)
        writer.write(b"alpha")
        writer.write(b"beta")
        pages = writer.finish()
        assert PagedReader(pagefile, pages).read_all() == b"alphabeta"

    def test_multi_page_stream(self, pagefile):
        data = bytes(range(256)) * 100  # > 6 pages
        writer = PagedWriter(pagefile)
        writer.write(data)
        pages = writer.finish()
        assert len(pages) > 1
        assert PagedReader(pagefile, pages).read_all() == data

    def test_empty_stream(self, pagefile):
        writer = PagedWriter(pagefile)
        assert writer.finish() == []
        assert PagedReader(pagefile, []).read_all() == b""

    def test_interleaved_streams(self, pagefile):
        w1 = PagedWriter(pagefile)
        w1.write(b"A" * 5000)
        p1 = w1.finish()
        w2 = PagedWriter(pagefile)
        w2.write(b"B" * 5000)
        p2 = w2.finish()
        assert PagedReader(pagefile, p1).read_all() == b"A" * 5000
        assert PagedReader(pagefile, p2).read_all() == b"B" * 5000

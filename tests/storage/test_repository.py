"""Direct tests for CompressedRepository and SizeReport."""

import pytest

from repro.storage.loader import load_document
from repro.storage.repository import SizeReport

DOC = """
<library>
  <shelf label="fiction">
    <book><title>Dune</title><pages>412</pages></book>
    <book><title>Foundation</title><pages>255</pages></book>
  </shelf>
  <shelf label="poetry">
    <book><title>Leaves of Grass</title><pages>145</pages></book>
  </shelf>
</library>
"""


@pytest.fixture(scope="module")
def repo():
    return load_document(DOC)


class TestAccessors:
    def test_tag_of(self, repo):
        assert repo.tag_of(0) == "library"

    def test_container_paths_sorted(self, repo):
        paths = repo.container_paths()
        assert paths == sorted(paths)

    def test_containers_matches_paths(self, repo):
        assert [c.path for c in repo.containers()] == \
            repo.container_paths()

    def test_text_of_direct_children_only(self, repo):
        shelf = repo.summary.resolve([("descendant", "shelf")])[0]
        shelf_id = shelf.extent[0]
        assert repo.text_of(shelf_id) == ""  # titles are deeper

    def test_full_text_of_subtree(self, repo):
        shelf = repo.summary.resolve([("descendant", "shelf")])[0]
        assert "Dune" in repo.full_text_of(shelf.extent[0])

    def test_attribute_of(self, repo):
        shelf = repo.summary.resolve([("descendant", "shelf")])[0]
        labels = [repo.attribute_of(i, "label") for i in shelf.extent]
        assert labels == ["fiction", "poetry"]

    def test_repr(self, repo):
        text = repr(repo)
        assert "nodes" in text and "containers" in text


class TestSizeReport:
    def test_total_is_sum_of_components(self, repo):
        report = repo.size_report()
        assert report.total == (
            report.name_dictionary + report.structure_records
            + report.structure_index + report.container_data
            + report.source_models + report.summary)

    def test_essential_excludes_access_support(self, repo):
        report = repo.size_report()
        assert report.essential == max(
            report.total - report.structure_index - report.summary
            - report.backward_edges, 0)

    def test_compression_factor_formula(self, repo):
        report = repo.size_report()
        assert report.compression_factor == pytest.approx(
            1.0 - report.total / report.original)

    def test_zero_original_degenerate(self):
        report = SizeReport(
            name_dictionary=1, structure_records=1, structure_index=1,
            container_data=1, source_models=1, summary=1, original=0)
        assert report.compression_factor == 0.0

    def test_backward_edges_bounded_by_components(self, repo):
        report = repo.size_report()
        assert 0 < report.backward_edges < \
            report.structure_records + report.container_data


class TestBenchReporting:
    def test_format_table_alignment(self):
        from repro.bench.reporting import format_table
        table = format_table("T", ["col", "n"],
                             [("a", 1.5), ("long-name", 20)],
                             note="note text")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "col" in lines[2]
        assert "1.500" in table
        assert table.endswith("note text")

    def test_record_result_writes_file(self, tmp_path, monkeypatch,
                                       capsys):
        import repro.bench.reporting as reporting
        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        reporting.record_result("exp", "TABLE BODY")
        assert (tmp_path / "exp.txt").read_text(
            encoding="utf-8").strip() == "TABLE BODY"
        assert "TABLE BODY" in capsys.readouterr().out


class TestCollate:
    def test_collate_orders_and_includes_all(self, tmp_path):
        from repro.bench.collate import collate, main
        (tmp_path / "fig7_qet.txt").write_text("FIG7", encoding="utf-8")
        (tmp_path / "zzz_custom.txt").write_text("CUSTOM",
                                                 encoding="utf-8")
        (tmp_path / "table1_datasets.txt").write_text("T1",
                                                      encoding="utf-8")
        report = collate(tmp_path)
        assert report.index("T1") < report.index("FIG7") < \
            report.index("CUSTOM")
        assert main([str(tmp_path)]) == 0
        assert (tmp_path / "INDEX.md").exists()

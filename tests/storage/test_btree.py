"""Unit and property tests for the B+ tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.btree import BPlusTree


class TestInsertSearch:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.search(5) is None
        assert 5 not in tree

    def test_single(self):
        tree = BPlusTree()
        tree.insert(1, "one")
        assert tree.search(1) == "one"
        assert 1 in tree

    def test_many_with_splits(self):
        tree = BPlusTree(order=4)
        for i in range(200):
            tree.insert(i, i * 10)
        assert len(tree) == 200
        assert tree.height > 1
        for i in range(200):
            assert tree.search(i) == i * 10

    def test_reverse_insert_order(self):
        tree = BPlusTree(order=4)
        for i in reversed(range(100)):
            tree.insert(i, str(i))
        assert [k for k, _ in tree.items()] == list(range(100))

    def test_duplicates(self):
        tree = BPlusTree(order=3)
        for i in range(10):
            tree.insert(7, f"v{i}")
        tree.insert(3, "three")
        tree.insert(9, "nine")
        assert len(tree.search_all(7)) == 10
        assert tree.search(7) is not None

    def test_min_order_enforced(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)


class TestBulkLoad:
    def test_roundtrip(self):
        pairs = [(i, i * 2) for i in range(500)]
        tree = BPlusTree.bulk_load(pairs, order=8)
        assert len(tree) == 500
        for key, value in pairs:
            assert tree.search(key) == value

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree.bulk_load([(2, "b"), (1, "a")])

    def test_empty(self):
        tree = BPlusTree.bulk_load([])
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_leaves_chained_for_scan(self):
        tree = BPlusTree.bulk_load(((i, i) for i in range(100)), order=4)
        assert [k for k, _ in tree.items()] == list(range(100))


class TestRangeScan:
    @pytest.fixture
    def tree(self):
        return BPlusTree.bulk_load([(i, str(i)) for i in range(0, 100, 2)],
                                   order=5)

    def test_closed_range(self, tree):
        keys = [k for k, _ in tree.range_scan(10, 20)]
        assert keys == [10, 12, 14, 16, 18, 20]

    def test_exclusive_high(self, tree):
        keys = [k for k, _ in tree.range_scan(10, 20, inclusive=False)]
        assert keys == [10, 12, 14, 16, 18]

    def test_open_low(self, tree):
        keys = [k for k, _ in tree.range_scan(None, 6)]
        assert keys == [0, 2, 4, 6]

    def test_open_high(self, tree):
        keys = [k for k, _ in tree.range_scan(94, None)]
        assert keys == [94, 96, 98]

    def test_bounds_between_keys(self, tree):
        keys = [k for k, _ in tree.range_scan(11, 15)]
        assert keys == [12, 14]

    def test_empty_range(self, tree):
        assert list(tree.range_scan(13, 13)) == []

    def test_bytes_keys(self):
        tree = BPlusTree(order=4)
        for word in ["pear", "apple", "fig", "date", "cherry"]:
            tree.insert(word.encode(), word)
        keys = [k for k, _ in tree.range_scan(b"b", b"e")]
        assert keys == [b"cherry", b"date"]


class TestNodeCount:
    def test_counts(self):
        tree = BPlusTree.bulk_load([(i, i) for i in range(64)], order=4)
        internal, leaves = tree.node_count()
        assert leaves == 16
        assert internal >= 1


@settings(deadline=None)
@given(st.lists(st.tuples(st.integers(-1000, 1000), st.integers()),
                max_size=300))
def test_matches_sorted_model(pairs):
    """Tree scan must equal a stable-sorted reference model."""
    tree = BPlusTree(order=4)
    for key, value in pairs:
        tree.insert(key, value)
    assert len(tree) == len(pairs)
    expected_keys = sorted(k for k, _ in pairs)
    assert [k for k, _ in tree.items()] == expected_keys
    for key, _ in pairs:
        assert key in tree


@settings(deadline=None)
@given(st.lists(st.integers(0, 200), min_size=1, max_size=200),
       st.integers(0, 200), st.integers(0, 200))
def test_range_scan_matches_filter(keys, low, high):
    tree = BPlusTree(order=4)
    for key in keys:
        tree.insert(key, key)
    low, high = min(low, high), max(low, high)
    got = [k for k, _ in tree.range_scan(low, high)]
    assert got == sorted(k for k in keys if low <= k <= high)

"""Staleness regression: cache invalidation must drop array memos.

``ValueContainer.as_arrays()`` memoizes its :class:`ContainerArrays`
on the container itself, while the serving layer's block cache charges
the view's bytes to its budget through ``CachedContainerView``.
Invalidating the serving caches used to evict only the *charged cache
entry* — the memo survived, so the bytes stayed resident unaccounted
and the next batch access resurrected the stale view instead of
rebuilding it.  ``invalidate_caches`` (Session and Database) now drops
the memos too.
"""

import pytest

from repro.service.blocks import CachedRepositoryView
from repro.service.cache import BlockCache
from repro.service.session import Database, Session
from repro.storage.loader import load_document

XML = (
    "<site><people>"
    + "".join(f"<person><name>n{i:03d}</name><age>{20 + i}</age>"
              "</person>" for i in range(40))
    + "</people></site>"
)


@pytest.fixture()
def repository():
    return load_document(XML)


def _an_arrays_path(repository):
    for container in repository.containers():
        if not container.is_blob:
            return container.path
    raise AssertionError("no non-blob container in fixture")


class TestContainerDropArrays:
    def test_drop_arrays_forces_rebuild(self, repository):
        container = repository.container(_an_arrays_path(repository))
        first = container.as_arrays()
        assert container.as_arrays() is first  # memoized
        container.drop_arrays()
        rebuilt = container.as_arrays()
        assert rebuilt is not first
        assert (rebuilt.parent_ids == first.parent_ids).all()

    def test_repository_drop_array_views_covers_all(self, repository):
        views = {c.path: c.as_arrays() for c in repository.containers()
                 if not c.is_blob}
        repository.drop_array_views()
        for container in repository.containers():
            if container.is_blob:
                continue
            assert container.as_arrays() is not views[container.path]


class TestServingInvalidation:
    def test_session_invalidate_drops_memoized_views(self, repository):
        session = Session(repository)
        path = _an_arrays_path(repository)
        view = session._view.container(path)
        first = view.as_arrays()
        assert view.as_arrays() is first  # cache hit
        session.invalidate_caches()
        assert session.block_cache.used_bytes == 0
        rebuilt = view.as_arrays()
        assert rebuilt is not first  # memo gone, view rebuilt...
        assert session.block_cache.used_bytes > 0  # ...and re-charged

    def test_database_invalidate_reaches_every_session(self, repository):
        db = Database(repository)
        sessions = [db.session(), db.session()]
        path = _an_arrays_path(repository)
        views = [s._view.container(path).as_arrays() for s in sessions]
        assert views[0] is views[1]  # one shared block cache
        db.invalidate_caches()
        for session in sessions:
            rebuilt = session._view.container(path).as_arrays()
            assert rebuilt is not views[0]

    def test_rebuild_is_identical(self, repository):
        cache = BlockCache(1 << 20)
        view = CachedRepositoryView(repository, cache)
        path = _an_arrays_path(repository)
        first = view.container(path).as_arrays()
        cache.invalidate()
        repository.drop_array_views()
        rebuilt = view.container(path).as_arrays()
        assert (rebuilt.parent_ids == first.parent_ids).all()
        assert rebuilt.count == first.count

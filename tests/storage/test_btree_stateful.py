"""Stateful model-based testing of the B+ tree against a sorted list."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.storage.btree import BPlusTree


class BTreeMachine(RuleBasedStateMachine):
    """Random insert/search/scan sequences vs a reference list model."""

    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=4)  # small order: many splits
        self.model: list[tuple[int, int]] = []

    @rule(key=st.integers(-50, 50), value=st.integers())
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model.append((key, value))

    @rule(key=st.integers(-60, 60))
    def search(self, key):
        found = self.tree.search(key)
        expected = [v for k, v in self.model if k == key]
        if expected:
            assert found in expected
        else:
            assert found is None

    @rule(key=st.integers(-60, 60))
    def search_all(self, key):
        assert sorted(self.tree.search_all(key)) == \
            sorted(v for k, v in self.model if k == key)

    @rule(low=st.integers(-60, 60), high=st.integers(-60, 60))
    def range_scan(self, low, high):
        low, high = min(low, high), max(low, high)
        got = [k for k, _ in self.tree.range_scan(low, high)]
        expected = sorted(k for k, _ in self.model if low <= k <= high)
        assert got == expected

    @invariant()
    def size_matches(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def full_scan_sorted(self):
        keys = [k for k, _ in self.tree.items()]
        assert keys == sorted(k for k, _ in self.model)


TestBTreeStateful = BTreeMachine.TestCase
TestBTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None)

"""Tests for value containers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.registry import train_codec
from repro.errors import StorageError
from repro.storage.containers import ValueContainer

WORDS = ["delta", "alpha", "charlie", "bravo", "alpha"]


def make_container(values, codec_name="alm", value_type="string"):
    container = ValueContainer("/doc/item/#text", value_type)
    for i, value in enumerate(values):
        container.add_value(value, parent_id=100 + i)
    container.seal(train_codec(codec_name, values))
    return container


class TestLifecycle:
    def test_add_after_seal_rejected(self):
        container = make_container(WORDS)
        with pytest.raises(StorageError):
            container.add_value("late", 0)

    def test_double_seal_rejected(self):
        container = make_container(WORDS)
        with pytest.raises(StorageError):
            container.seal(train_codec("alm", WORDS))

    def test_access_before_seal_rejected(self):
        container = ValueContainer("/p")
        container.add_value("x", 0)
        with pytest.raises(StorageError):
            list(container.scan())

    def test_len(self):
        assert len(make_container(WORDS)) == 5


class TestOrderingAndPointers:
    def test_records_value_sorted_not_document_ordered(self):
        container = make_container(WORDS)
        values = [v for _, v in container.scan_decoded()]
        assert values == sorted(WORDS)

    def test_sorted_position_maps_staging_to_slot(self):
        container = make_container(WORDS)
        for staged_index, value in enumerate(WORDS):
            slot = container.sorted_position(staged_index)
            assert container.value_at(slot) == value

    def test_parent_ids_travel_with_values(self):
        container = make_container(WORDS)
        # "delta" was staged first with parent 100.
        slot = container.sorted_position(0)
        assert container.record_at(slot).parent_id == 100

    def test_compressed_scan_order_preserving_codec(self):
        container = make_container(WORDS, codec_name="alm")
        compressed = [cv for _, cv in container.scan()]
        assert compressed == sorted(compressed)


class TestIntervalSearch:
    @pytest.mark.parametrize("codec_name", ["alm", "hutucker",
                                            "arithmetic", "huffman"])
    def test_closed_interval(self, codec_name):
        container = make_container(WORDS, codec_name)
        codec = container.codec
        got = sorted(codec.decode(cv)
                     for _, cv in container.interval_search("alpha",
                                                            "charlie"))
        assert got == ["alpha", "alpha", "bravo", "charlie"]

    def test_open_bounds(self):
        container = make_container(WORDS)
        assert len(list(container.interval_search(None, None))) == 5

    def test_exclusive_bounds(self):
        container = make_container(WORDS)
        got = [container.codec.decode(cv) for _, cv in
               container.interval_search("alpha", "delta",
                                         low_inclusive=False,
                                         high_inclusive=False)]
        assert got == ["bravo", "charlie"]

    def test_bound_outside_source_model_falls_back(self):
        container = make_container(WORDS, "alm")
        # 'z' never occurs in the corpus: try_encode fails, the
        # decompressing fallback must still answer correctly.
        got = [container.codec.decode(cv) for _, cv in
               container.interval_search("delta", "zzz")]
        assert got == ["delta"]

    def test_numeric_container_numeric_order(self):
        values = ["9", "100", "23"]
        container = make_container(values, "integer", value_type="int")
        got = [container.codec.decode(cv) for _, cv in
               container.interval_search("10", "150")]
        assert got == ["23", "100"]


class TestBlobContainers:
    def test_blob_roundtrip(self):
        container = make_container(WORDS, "bzip2")
        assert container.is_blob
        assert [v for _, v in container.scan_decoded()] == sorted(WORDS)

    def test_blob_interval_search(self):
        container = make_container(WORDS, "zlib")
        codec = container.codec
        got = [codec.decode(cv) for _, cv in
               container.interval_search("bravo", "delta")]
        assert got == ["bravo", "charlie", "delta"]

    def test_blob_value_at(self):
        container = make_container(WORDS, "zlib")
        assert container.value_at(0) == "alpha"


class TestAccounting:
    def test_data_size_positive(self):
        container = make_container(WORDS)
        # at least one payload byte + one parent-pointer byte per record
        assert container.data_size_bytes() >= 2 * len(WORDS)

    def test_uncompressed_size(self):
        container = make_container(WORDS)
        assert container.uncompressed_size_bytes() == \
            sum(len(w) for w in WORDS)

    def test_compression_shrinks_repetitive_values(self):
        values = ["the same sentence again and again"] * 50
        container = make_container(values)
        assert (container.data_size_bytes() - 4 * len(values)
                < container.uncompressed_size_bytes() / 2)


@settings(deadline=None, max_examples=40)
@given(st.lists(st.text(alphabet="abcde", max_size=8), min_size=1,
                max_size=30),
       st.text(alphabet="abcde", max_size=4),
       st.text(alphabet="abcde", max_size=4))
def test_interval_matches_filter_model(values, low, high):
    container = make_container(values)
    low, high = min(low, high), max(low, high)
    codec = container.codec
    got = sorted(codec.decode(cv)
                 for _, cv in container.interval_search(low, high))
    assert got == sorted(v for v in values if low <= v <= high)

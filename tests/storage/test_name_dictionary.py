"""Tests for the name dictionary."""

from repro.storage.name_dictionary import NameDictionary


class TestIntern:
    def test_assigns_sequential_codes(self):
        d = NameDictionary()
        assert d.intern("site") == 0
        assert d.intern("people") == 1
        assert d.intern("site") == 0

    def test_lookup_both_ways(self):
        d = NameDictionary()
        code = d.intern("person")
        assert d.name_of(code) == "person"
        assert d.code_of("person") == code
        assert d.code_of("ghost") is None

    def test_contains_and_len(self):
        d = NameDictionary()
        d.intern("a")
        assert "a" in d
        assert "b" not in d
        assert len(d) == 1


class TestCodeBits:
    def test_minimum_one_bit(self):
        d = NameDictionary()
        assert d.code_bits == 1
        d.intern("a")
        assert d.code_bits == 1

    def test_paper_example_92_names_7_bits(self):
        d = NameDictionary()
        for i in range(92):
            d.intern(f"name{i}")
        assert d.code_bits == 7

    def test_power_of_two_boundary(self):
        d = NameDictionary()
        for i in range(8):
            d.intern(f"n{i}")
        assert d.code_bits == 3
        d.intern("extra")
        assert d.code_bits == 4

    def test_serialized_size(self):
        d = NameDictionary()
        d.intern("ab")
        assert d.serialized_size_bytes() == 3

    def test_names_in_code_order(self):
        d = NameDictionary()
        for name in ("z", "a", "m"):
            d.intern(name)
        assert d.names() == ["z", "a", "m"]

"""Repository save/load round-trips, including query equivalence."""

import pytest

from repro.core.system import XQueCSystem
from repro.errors import PageError
from repro.query.engine import QueryEngine
from repro.storage.loader import load_document
from repro.storage.serialization import load_repository, save_repository
from repro.xmark.generator import generate_xmark

QUERIES = [
    "/site/people/person/name/text()",
    'for $p in /site/people/person where $p/name/text() < "D" '
    "return $p/@id",
    "count(//item)",
    "for $p in /site/people/person, "
    "$a in /site/closed_auctions/closed_auction "
    "where $a/buyer/@person = $p/@id return $p/name/text()",
]


@pytest.fixture(scope="module")
def xml_text():
    return generate_xmark(factor=0.005, seed=4)


@pytest.fixture(scope="module")
def saved(tmp_path_factory, xml_text):
    repo = load_document(xml_text)
    path = tmp_path_factory.mktemp("repo") / "auction.xqc"
    save_repository(repo, path)
    return repo, path


class TestRoundTrip:
    def test_structure_identical(self, saved):
        repo, path = saved
        loaded = load_repository(path)
        assert len(loaded.structure) == len(repo.structure)
        for node_id in range(len(repo.structure)):
            a = repo.structure.record(node_id)
            b = loaded.structure.record(node_id)
            assert (a.tag_code, a.parent_id, a.post, a.level) == \
                (b.tag_code, b.parent_id, b.post, b.level)
            assert a.children == b.children
            assert a.value_pointers == b.value_pointers
            assert a.content_sequence == b.content_sequence

    def test_dictionary_identical(self, saved):
        repo, path = saved
        loaded = load_repository(path)
        assert loaded.dictionary.names() == repo.dictionary.names()

    def test_containers_bit_identical(self, saved):
        repo, path = saved
        loaded = load_repository(path)
        assert loaded.container_paths() == repo.container_paths()
        for container_path in repo.container_paths():
            original = list(repo.container(container_path).scan())
            restored = list(loaded.container(container_path).scan())
            assert original == restored, container_path

    def test_summary_identical(self, saved):
        repo, path = saved
        loaded = load_repository(path)
        original = {n.path: (n.extent, n.container_path)
                    for n in repo.summary.root.walk()}
        restored = {n.path: (n.extent, n.container_path)
                    for n in loaded.summary.root.walk()}
        assert original == restored

    def test_statistics_identical(self, saved):
        repo, path = saved
        loaded = load_repository(path)
        assert loaded.statistics.element_count == \
            repo.statistics.element_count
        assert loaded.statistics.tag_cardinality == \
            repo.statistics.tag_cardinality
        assert loaded.statistics.average_fanout("people") == \
            repo.statistics.average_fanout("people")

    def test_size_report_close(self, saved):
        repo, path = saved
        loaded = load_repository(path)
        assert loaded.size_report().total == repo.size_report().total

    @pytest.mark.parametrize("query", QUERIES)
    def test_queries_identical(self, saved, query):
        repo, path = saved
        loaded = load_repository(path)
        assert QueryEngine(loaded).execute(query).to_xml() == \
            QueryEngine(repo).execute(query).to_xml()


class TestWorkloadConfiguredRepository:
    def test_shared_models_stay_shared(self, tmp_path, xml_text):
        system = XQueCSystem.load(xml_text, workload_queries=[
            "for $p in /site/people/person, "
            "$a in /site/closed_auctions/closed_auction "
            "where $a/buyer/@person = $p/@id return $p"])
        path = tmp_path / "tuned.xqc"
        save_repository(system.repository, path)
        loaded = load_repository(path)
        group = system.configuration.group_of(
            "/site/people/person/@id")
        if group is not None and len(group.container_paths) > 1:
            codecs = {id(loaded.container(p).codec)
                      for p in group.container_paths}
            assert len(codecs) == 1, "shared source model lost"


class TestFailureInjection:
    def test_not_a_repository(self, tmp_path):
        path = tmp_path / "junk.xqc"
        path.write_bytes(b"\x00" * 8192)
        with pytest.raises(PageError):
            load_repository(path)

    def test_corrupt_stream_detected(self, saved, tmp_path):
        _, source = saved
        target = tmp_path / "corrupt.xqc"
        data = bytearray(source.read_bytes())
        # Flip the first payload byte of page 1 (first stream page);
        # the page checksum must catch it.
        data[4096 + 7] ^= 0xFF
        target.write_bytes(bytes(data))
        with pytest.raises(PageError):
            load_repository(target)

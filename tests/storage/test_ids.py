"""Tests for node identifier schemes."""

from repro.storage.ids import SimpleIdAssigner, StructuralId


class TestSimpleIds:
    def test_sequential(self):
        assigner = SimpleIdAssigner()
        assert [assigner.next_id() for _ in range(3)] == [0, 1, 2]
        assert assigner.count == 3

    def test_custom_start(self):
        assert SimpleIdAssigner(start=10).next_id() == 10


class TestStructuralIds:
    # Tree:  a(pre 0, post 4, lvl 0)
    #          b(1, 1, 1)   c(3, 3, 1)
    #            d(2, 0, 2)
    A = StructuralId(0, 4, 0)
    B = StructuralId(1, 1, 1)
    C = StructuralId(3, 3, 1)
    D = StructuralId(2, 0, 2)

    def test_ancestor(self):
        assert self.A.is_ancestor_of(self.D)
        assert self.B.is_ancestor_of(self.D)
        assert not self.C.is_ancestor_of(self.D)
        assert not self.D.is_ancestor_of(self.A)

    def test_not_own_ancestor(self):
        assert not self.A.is_ancestor_of(self.A)

    def test_descendant(self):
        assert self.D.is_descendant_of(self.A)
        assert not self.A.is_descendant_of(self.D)

    def test_parent(self):
        assert self.B.is_parent_of(self.D)
        assert not self.A.is_parent_of(self.D)  # grandparent

    def test_document_order(self):
        assert self.A.precedes(self.B)
        assert self.B.precedes(self.C)

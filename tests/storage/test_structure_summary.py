"""Direct tests for StructureTree and StructureSummary internals."""

import pytest

from repro.storage.structure import NodeRecord, StructureTree
from repro.storage.summary import StructureSummary


def build_tree():
    """a -> (b -> d), c  with post/level numbers filled in."""
    tree = StructureTree()
    tree.add(NodeRecord(0, 0, -1, children=[1, 3], post=3, level=0))
    tree.add(NodeRecord(1, 1, 0, children=[2], post=1, level=1))
    tree.add(NodeRecord(2, 2, 1, post=0, level=2))
    tree.add(NodeRecord(3, 3, 0, post=2, level=1))
    return tree


class TestStructureTree:
    def test_dense_ids_enforced(self):
        tree = StructureTree()
        with pytest.raises(ValueError):
            tree.add(NodeRecord(5, 0, -1))

    def test_parent_navigation(self):
        tree = build_tree()
        assert tree.parent_of(2) == 1
        assert tree.parent_of(0) is None

    def test_children_filtered_by_tag(self):
        tree = build_tree()
        assert tree.children_of(0) == [1, 3]
        assert tree.children_of(0, tag_code=3) == [3]

    def test_descendants_interval(self):
        tree = build_tree()
        assert tree.descendants_of(0) == [1, 2, 3]
        assert tree.descendants_of(1) == [2]
        assert tree.descendants_of(3) == []

    def test_btree_index(self):
        tree = build_tree()
        record = tree.index.search(2)
        assert record is not None and record.node_id == 2

    def test_index_invalidated_on_add(self):
        tree = build_tree()
        _ = tree.index
        tree.add(NodeRecord(4, 1, 3, post=4, level=2))
        assert tree.index.search(4) is not None

    def test_structural_id(self):
        tree = build_tree()
        sid = tree.record(1).structural_id
        assert (sid.pre, sid.post, sid.level) == (1, 1, 1)

    def test_size_accounting(self):
        tree = build_tree()
        assert tree.serialized_size_bytes() > 0
        assert tree.backward_edge_bytes() > 0
        # A four-node tree has a single-leaf index: no internal nodes.
        assert tree.index_size_bytes() == 0
        big = StructureTree()
        for i in range(500):
            big.add(NodeRecord(i, 0, i - 1, post=i, level=0))
        assert big.index_size_bytes() > 0


class TestStructureSummaryDirect:
    def test_paths(self):
        summary = StructureSummary()
        person = summary.root.child("site").child("people").child("person")
        assert person.path == "/site/people/person"

    def test_child_reuse(self):
        summary = StructureSummary()
        a1 = summary.root.child("a")
        a2 = summary.root.child("a")
        assert a1 is a2
        assert summary.node_count() == 1

    def test_resolve_empty_result(self):
        summary = StructureSummary()
        summary.root.child("a")
        assert summary.resolve([("child", "zzz")]) == []

    def test_resolve_unknown_axis(self):
        summary = StructureSummary()
        summary.root.child("a")
        with pytest.raises(ValueError):
            summary.resolve([("following", "a")])

    def test_descendant_finds_nested(self):
        summary = StructureSummary()
        summary.root.child("a").child("b").child("c")
        nodes = summary.resolve([("descendant", "c")])
        assert [n.path for n in nodes] == ["/a/b/c"]

    def test_leaves(self):
        summary = StructureSummary()
        leaf = summary.root.child("a").child("#text")
        leaf.container_path = "/a/#text"
        assert summary.leaves() == [leaf]

    def test_wildcard_excludes_attributes_and_text(self):
        summary = StructureSummary()
        a = summary.root.child("a")
        a.child("b")
        a.child("@id")
        a.child("#text")
        nodes = summary.resolve([("child", "a"), ("child", "*")])
        assert [n.step for n in nodes] == ["b"]

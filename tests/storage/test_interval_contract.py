"""Regression tests for the ``interval_search`` bound contract.

Pinned by the verify oracle's codec layer: an ``int`` container probed
with a fractional bound like ``"9.5"`` used to crash with
``ValueError: invalid literal for int()`` inside the bisect key (the
engine generates such bounds from range predicates whose constant is a
float literal).  The documented contract is typed comparison: numeric
containers accept any numeric bound text, string containers compare
lexicographically, and a non-numeric bound over a numeric container is
a :class:`~repro.errors.StorageError`.
"""

import pytest

from repro.compression.registry import train_codec
from repro.errors import StorageError
from repro.storage.containers import ValueContainer

INTS = ["5", "7", "9", "31"]
FLOATS = ["0.5", "7.25", "9.0", "100.125"]


def make_container(values, codec_name, value_type):
    container = ValueContainer("/doc/v/#text", value_type)
    for i, value in enumerate(values):
        container.add_value(value, parent_id=100 + i)
    container.seal(train_codec(codec_name, values))
    return container


def decoded(container, low, high, low_inc=True, high_inc=True):
    codec = container.codec
    return sorted(codec.decode(c) for _, c in
                  container.interval_search(low, high, low_inc,
                                            high_inc))


class TestFractionalBoundOverIntContainer:
    """The original crash: ``int("6.5")`` raised mid-bisect."""

    @pytest.fixture
    def container(self):
        return make_container(INTS, "integer", "int")

    def test_fractional_low_bound(self, container):
        assert decoded(container, "6.5", None) == \
            sorted(["7", "9", "31"])

    def test_fractional_high_bound(self, container):
        assert decoded(container, None, "8.5") == sorted(["5", "7"])

    @pytest.mark.parametrize("low_inc,high_inc", [
        (True, True), (True, False), (False, True), (False, False)])
    def test_fractional_bounds_all_inclusivities(self, container,
                                                 low_inc, high_inc):
        # No value equals a fractional bound, so inclusivity must not
        # change the answer — 7 and 9 lie strictly inside (6.5, 9.5).
        assert decoded(container, "6.5", "9.5", low_inc, high_inc) == \
            sorted(["7", "9"])

    @pytest.mark.parametrize("low_inc,expected", [
        (True, ["31", "7", "9"]), (False, ["31", "9"])])
    def test_exact_endpoint_inclusivity(self, container, low_inc,
                                        expected):
        assert decoded(container, "7", None, low_inc) == expected

    def test_non_numeric_bound_raises_storage_error(self, container):
        with pytest.raises(StorageError, match="is not numeric"):
            list(container.interval_search("abc", None))


class TestIntShapedBoundOverFloatContainer:
    def test_integer_text_bound(self):
        container = make_container(FLOATS, "float", "float")
        assert decoded(container, "7", None) == \
            sorted(["7.25", "9.0", "100.125"])

    def test_scientific_notation_bound(self):
        container = make_container(FLOATS, "float", "float")
        assert decoded(container, None, "1e1") == \
            sorted(["0.5", "7.25", "9.0"])


class TestStringBounds:
    @pytest.fixture
    def container(self):
        return make_container(["", "a", "ab", "b"], "alm", "string")

    def test_empty_string_is_an_ordinary_low_bound(self, container):
        assert decoded(container, "", None) == ["", "a", "ab", "b"]

    def test_empty_string_exclusive_low_drops_empty_value(self,
                                                          container):
        assert decoded(container, "", None, low_inc=False) == \
            ["a", "ab", "b"]

    def test_empty_string_high_bound(self, container):
        assert decoded(container, None, "") == [""]
        assert decoded(container, None, "", high_inc=False) == []

    def test_none_is_unbounded(self, container):
        assert decoded(container, None, None) == ["", "a", "ab", "b"]

    def test_numeric_strings_compare_lexicographically(self):
        container = make_container(["10", "9", "100"], "alm", "string")
        # String container: "10" < "100" < "9".
        assert decoded(container, None, "2") == sorted(["10", "100"])


class TestBlobPath:
    """The XMill-style chunk path shares the typed-bound contract."""

    def test_fractional_bound_over_int_blob(self):
        container = make_container(INTS, "zlib", "int")
        assert decoded(container, "6.5", "9.5") == sorted(["7", "9"])

    def test_non_numeric_bound_raises(self):
        container = make_container(INTS, "zlib", "int")
        with pytest.raises(StorageError, match="is not numeric"):
            list(container.interval_search(None, "x"))


class TestDecompressingPath:
    """Order-agnostic codec over numeric values: bisect decodes pivots."""

    def test_fractional_bound_with_huffman_over_ints(self):
        container = make_container(INTS, "huffman", "int")
        assert decoded(container, "6.5", None) == \
            sorted(["7", "9", "31"])

    def test_duplicates_preserved(self):
        container = make_container(["7", "7", "9"], "integer", "int")
        got = [container.codec.decode(c) for _, c in
               container.interval_search("7", "7")]
        assert got == ["7", "7"]

"""The container array view backing the batch engine (DESIGN.md §13).

``as_arrays()`` caching, ``interval_positions``/``interval_bounds``
parity with the scalar ``interval_search``, the vectorized codec
kernels, the structure tree's ``parent_array`` and the block-cache
memoization of the array view.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.compression.kernels import (
    FloatKernel,
    IntegerKernel,
    kernel_for,
)
from repro.obs import runtime
from repro.obs.telemetry import Telemetry
from repro.service.blocks import CachedRepositoryView
from repro.service.cache import BlockCache
from repro.storage.loader import load_document

DOC = """
<store>
  <item n="5"><name>delta</name><price>19.5</price></item>
  <item n="2"><name>alpha</name><price>-3.25</price></item>
  <item n="9"><name>echo</name><price>0.0</price></item>
  <item n="2"><name>bravo</name><price>100.125</price></item>
  <item n="7"><name>charlie</name><price>-50.5</price></item>
</store>
"""

NAME_PATH = "/store/item/name/#text"
N_PATH = "/store/item/@n"
PRICE_PATH = "/store/item/price/#text"


@pytest.fixture(scope="module")
def repo():
    return load_document(DOC)


class TestAsArrays:
    def test_cached_instance(self, repo):
        container = repo.container(NAME_PATH)
        assert container.as_arrays() is container.as_arrays()

    def test_parent_ids_match_records(self, repo):
        container = repo.container(NAME_PATH)
        arrays = container.as_arrays()
        assert arrays.count == len(container)
        assert arrays.parent_ids.dtype == np.int64
        scalar = [record.parent_id
                  for _, record in zip(range(arrays.count),
                                       arrays.records)]
        assert arrays.parent_ids.tolist() == scalar

    def test_blob_container_has_no_records(self):
        blob_repo = load_document("<r><t>aa</t><t>bb</t></r>",
                                  default_string_codec="zlib")
        arrays = blob_repo.container("/r/t/#text").as_arrays()
        assert arrays.records is None
        assert arrays.sort_keys is None
        assert arrays.count == 2


class TestIntervalPositions:
    BOUNDS = [("alpha", "charlie"), ("bravo", None), (None, "delta"),
              (None, None), ("aaa", "zzz"), ("foo", "foo")]

    def test_matches_scalar_interval_search(self, repo):
        container = repo.container(NAME_PATH)
        for (low, high), li, hi in itertools.product(
                self.BOUNDS, (True, False), (True, False)):
            positions = container.interval_positions(low, high, li, hi)
            assert positions is not None
            start, end = positions
            scalar = list(container.interval_search(low, high, li, hi))
            records = container.as_arrays().records
            assert [(records[i].parent_id, records[i].compressed)
                    for i in range(start, end)] == scalar, \
                (low, high, li, hi)

    def test_numeric_container(self, repo):
        container = repo.container(N_PATH)
        start, end = container.interval_positions("2", "7", True, True)
        values = [container.value_at(i) for i in range(start, end)]
        assert values == ["2", "2", "5", "7"]

    def test_interval_bounds_counts_like_interval_search(self, repo):
        container = repo.container(NAME_PATH)
        t1 = Telemetry(enabled=True)
        with runtime.activated(t1):
            list(container.interval_search("alpha", "delta",
                                           True, True))
        t2 = Telemetry(enabled=True)
        with runtime.activated(t2):
            container.interval_bounds("alpha", "delta", True, True)
        key = "container.interval_searches"
        assert t1.metrics.counters().get(key) == \
            t2.metrics.counters().get(key) == 1

    def test_interval_positions_is_uncounted(self, repo):
        container = repo.container(NAME_PATH)
        telemetry = Telemetry(enabled=True)
        with runtime.activated(telemetry):
            container.interval_positions("alpha", "delta", True, True)
        assert "container.interval_searches" not in \
            telemetry.metrics.counters()

    def test_blob_returns_none(self):
        blob_repo = load_document("<r><t>aa</t><t>bb</t></r>",
                                  default_string_codec="zlib")
        container = blob_repo.container("/r/t/#text")
        assert container.interval_positions("a", "z", True, True) is None


class TestKernels:
    def test_integer_kernel_matches_scalar_decode(self, repo):
        container = repo.container(N_PATH)
        kernel = kernel_for(container.codec)
        assert isinstance(kernel, IntegerKernel)
        records = container.as_arrays().records
        keys = kernel.decode_keys(records)
        assert keys.dtype == np.int64
        assert keys.tolist() == \
            [int(container.codec.decode(r.compressed))
             for r in records]

    def test_float_kernel_matches_scalar_decode(self, repo):
        container = repo.container(PRICE_PATH)
        kernel = kernel_for(container.codec)
        assert isinstance(kernel, FloatKernel)
        records = container.as_arrays().records
        keys = kernel.decode_keys(records)
        assert keys.dtype == np.float64
        assert keys.tolist() == \
            [float(container.codec.decode(r.compressed))
             for r in records]

    def test_sort_keys_are_sorted(self, repo):
        for path in (N_PATH, PRICE_PATH):
            keys = repo.container(path).as_arrays().sort_keys
            assert keys is not None
            assert (keys[:-1] <= keys[1:]).all()

    def test_string_codec_has_no_kernel(self, repo):
        assert kernel_for(repo.container(NAME_PATH).codec) is None
        assert repo.container(NAME_PATH).as_arrays().sort_keys is None


class TestParentArray:
    def test_matches_scalar_parents(self, repo):
        structure = repo.structure
        parents = structure.parent_array()
        assert parents.dtype == np.int64
        for node_id in range(len(parents)):
            assert parents[node_id] == \
                structure.record(node_id).parent_id

    def test_cached(self, repo):
        structure = repo.structure
        assert structure.parent_array() is structure.parent_array()


class TestBlockCacheArrays:
    def test_as_arrays_memoized_in_cache(self, repo):
        cache = BlockCache(budget_bytes=1 << 20)
        view = CachedRepositoryView(repo, cache)
        container = view.container(NAME_PATH)
        first = container.as_arrays()
        hits_before = cache.metrics.counters().get(
            "cache.block.hit", 0)
        assert container.as_arrays() is first
        assert cache.metrics.counters().get("cache.block.hit", 0) == \
            hits_before + 1

    def test_arrays_charged_to_budget(self, repo):
        cache = BlockCache(budget_bytes=1 << 20)
        view = CachedRepositoryView(repo, cache)
        used_before = cache.used_bytes
        view.container(NAME_PATH).as_arrays()
        assert cache.used_bytes > used_before

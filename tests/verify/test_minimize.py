"""Tests for the delta-debugging minimizer."""

from repro.verify.minimize import ddmin


class TestDdmin:
    def test_single_culprit(self):
        items = list(range(40))
        assert ddmin(items, lambda s: 17 in s) == [17]

    def test_pair_of_culprits(self):
        items = list(range(40))
        result = ddmin(items, lambda s: 3 in s and 29 in s)
        assert sorted(result) == [3, 29]

    def test_already_minimal(self):
        assert ddmin(["x"], lambda s: "x" in s) == ["x"]

    def test_non_failing_input_returned_unchanged(self):
        items = [1, 2, 3]
        assert ddmin(items, lambda s: False) == items

    def test_order_preserved(self):
        items = ["d", "a", "c", "b"]
        result = ddmin(items, lambda s: "a" in s and "b" in s)
        assert result == ["a", "b"]

    def test_raising_predicate_counts_as_not_failing(self):
        def failing(subset):
            if len(subset) < 2:
                raise ValueError("cannot even evaluate this")
            return 5 in subset

        result = ddmin(list(range(10)), failing)
        assert 5 in result and len(result) == 2

    def test_budget_exhaustion_still_returns_failing_subset(self):
        items = list(range(64))

        def failing(subset):
            return 0 in subset and 63 in subset

        result = ddmin(items, failing, max_attempts=10)
        assert failing(result)
        assert len(result) <= len(items)

    def test_deterministic(self):
        items = list(range(30))

        def failing(subset):
            return sum(subset) >= 100

        assert ddmin(items, failing) == ddmin(items, failing)

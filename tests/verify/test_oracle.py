"""Oracle self-tests.

Two directions: the oracles must pass on the shipped codecs and engine
(zero mismatches on a small fixed budget), and they must *fail* on
deliberately broken codecs — a correctness oracle that cannot detect a
planted bug verifies nothing.
"""

import json

import pytest

from repro.compression import registry
from repro.compression.base import (
    Codec,
    CompressedValue,
    CompressionProperties,
)
from repro.verify.codec_oracle import run_codec_oracle
from repro.verify.engine_oracle import run_engine_oracle
from repro.verify.report import Mismatch, VerifyReport, write_corpus
from repro.verify.runner import run_verify
from repro.verify.values import float_values, int_values, string_values


class TestCleanRun:
    def test_codec_oracle_all_registered_codecs_clean(self):
        report = run_codec_oracle(seed=0, rounds=1,
                                  values_per_round=24)
        assert report.ok, report.render_text()
        assert report.checks_run > 0

    def test_engine_oracle_clean(self):
        report = run_engine_oracle(seed=0, docs=2, queries=8)
        assert report.ok, report.render_text()
        assert report.checks_run == 2 * 8 * 2   # docs x queries x variants

    def test_run_verify_merges_both_layers(self):
        report = run_verify(seed=0, docs=1, queries=4,
                            codec_rounds=1, codec_values=12)
        assert report.ok, report.render_text()
        assert report.checks_run > 8


class TestDeterminism:
    def test_value_generators_are_seed_deterministic(self):
        import random
        for maker in (string_values, int_values, float_values):
            a = maker(random.Random("seed/x"), 32)
            b = maker(random.Random("seed/x"), 32)
            assert a == b

    def test_codec_oracle_reports_identically(self):
        first = run_codec_oracle(seed=3, rounds=1, values_per_round=16,
                                 codecs=["huffman", "integer"])
        second = run_codec_oracle(seed=3, rounds=1, values_per_round=16,
                                  codecs=["huffman", "integer"])
        assert first.to_json() == second.to_json()


class _ReversedOrderCodec(Codec):
    """Deliberately broken: claims ``ineq`` but inverts byte order."""

    name = "verify-broken-order"
    properties = CompressionProperties(eq=True, ineq=True, wild=False)

    @classmethod
    def train(cls, values):
        return cls()

    def encode(self, value):
        data = bytes(255 - b for b in value.encode("utf-8"))
        return CompressedValue(data, len(data) * 8)

    def decode(self, compressed):
        raw = compressed.data[:compressed.bits // 8]
        return bytes(255 - b for b in raw).decode("utf-8")

    def model_size_bytes(self):
        return 0


class _TruncatingCodec(Codec):
    """Deliberately broken: decode loses the last byte."""

    name = "verify-broken-roundtrip"
    properties = CompressionProperties(eq=False, ineq=False, wild=False)

    @classmethod
    def train(cls, values):
        return cls()

    def encode(self, value):
        data = value.encode("utf-8")
        return CompressedValue(data, len(data) * 8)

    def decode(self, compressed):
        raw = compressed.data[:compressed.bits // 8]
        return raw[:-1].decode("utf-8", errors="ignore")

    def model_size_bytes(self):
        return 0


@pytest.fixture
def broken_codecs():
    registry.register_codec(_ReversedOrderCodec)
    registry.register_codec(_TruncatingCodec)
    yield
    registry._REGISTRY.pop(_ReversedOrderCodec.name, None)
    registry._REGISTRY.pop(_TruncatingCodec.name, None)


class TestPlantedBugs:
    """The oracle must catch a codec that lies about its properties."""

    def test_order_violation_detected_and_minimized(self, broken_codecs):
        report = run_codec_oracle(
            seed=0, rounds=1, values_per_round=16,
            codecs=[_ReversedOrderCodec.name])
        assert not report.ok
        ineq = [m for m in report.mismatches if m.check == "ineq"]
        assert ineq, report.render_text()
        # ddmin shrinks the witness to two out-of-order values.
        assert len(ineq[0].reproducer["values"]) == 2

    def test_roundtrip_violation_detected(self, broken_codecs):
        report = run_codec_oracle(
            seed=0, rounds=1, values_per_round=16,
            codecs=[_TruncatingCodec.name])
        assert not report.ok
        checks = {m.check for m in report.mismatches}
        assert "round-trip" in checks, report.render_text()
        broken = [m for m in report.mismatches
                  if m.check == "round-trip"][0]
        # A single non-empty value suffices to witness the truncation.
        assert len(broken.reproducer["values"]) == 1


class TestReporting:
    def _mismatch(self):
        return Mismatch(layer="codec", check="wild", codec="huffman",
                        container="/doc/name/#text",
                        plan_node="ContAccess",
                        description="starts_with disagreement",
                        reproducer={"values": ["a", "ab"], "probe": "a"})

    def test_headline_carries_blame(self):
        line = self._mismatch().headline()
        assert "codec/wild" in line
        assert "huffman" in line
        assert "/doc/name/#text" in line
        assert "ContAccess" in line

    def test_json_round_trips(self):
        report = VerifyReport(seed=7)
        report.checks_run = 3
        report.add(self._mismatch())
        doc = json.loads(report.to_json())
        assert doc["seed"] == 7
        assert doc["ok"] is False
        assert doc["mismatches"][0]["plan_node"] == "ContAccess"

    def test_write_corpus(self, tmp_path):
        report = VerifyReport(seed=7)
        report.add(self._mismatch())
        written = write_corpus(report, tmp_path / "corpus")
        names = sorted(p.name for p in written)
        assert "summary.json" in names
        assert any(n.startswith("counterexample-000") for n in names)
        payload = json.loads(
            (tmp_path / "corpus" /
             "counterexample-000-codec-wild.json").read_text())
        assert payload["reproducer"]["values"] == ["a", "ab"]

"""Tests for text helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.text import (
    char_distribution,
    char_frequencies,
    common_prefix,
    is_numeric_string,
    successor_string,
)


class TestCharFrequencies:
    def test_counts(self):
        freqs = char_frequencies(["ab", "b"])
        assert freqs["a"] == 1
        assert freqs["b"] == 2

    def test_distribution_sums_to_one(self):
        dist = char_distribution(["aab"])
        assert abs(sum(dist.values()) - 1.0) < 1e-12
        assert dist["a"] == 2 / 3

    def test_empty(self):
        assert char_distribution([]) == {}


class TestCommonPrefix:
    def test_shared(self):
        assert common_prefix("there", "their") == "the"

    def test_disjoint(self):
        assert common_prefix("abc", "xyz") == ""

    def test_one_prefix_of_other(self):
        assert common_prefix("the", "there") == "the"


class TestSuccessorString:
    def test_basic(self):
        assert successor_string("abc") == "abd"

    def test_orders_after_all_extensions(self):
        succ = successor_string("ab")
        assert "ab" < "abzzz" < succ

    @given(st.text(alphabet=st.characters(min_codepoint=32,
                                          max_codepoint=1000), min_size=1,
                   max_size=10),
           st.text(alphabet=st.characters(min_codepoint=32,
                                          max_codepoint=1000), max_size=5))
    def test_property(self, s, tail):
        assert s <= s + tail < successor_string(s)


class TestIsNumericString:
    def test_int(self):
        assert is_numeric_string("42")

    def test_float(self):
        assert is_numeric_string(" 3.14 ")

    def test_words(self):
        assert not is_numeric_string("fortytwo")

    def test_empty(self):
        assert not is_numeric_string("   ")

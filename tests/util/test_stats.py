"""Tests for descriptive statistics helpers."""

import math

import pytest

from repro.util.stats import (
    compression_factor,
    geometric_mean,
    mean,
    shannon_entropy,
)


class TestShannonEntropy:
    def test_uniform_two_symbols(self):
        assert abs(shannon_entropy(["ab"]) - 1.0) < 1e-12

    def test_single_symbol_zero(self):
        assert shannon_entropy(["aaaa"]) == 0.0

    def test_empty(self):
        assert shannon_entropy([]) == 0.0

    def test_four_uniform_symbols(self):
        assert abs(shannon_entropy(["abcd"]) - 2.0) < 1e-12


class TestMeans:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_geometric_mean(self):
        assert abs(geometric_mean([1.0, 4.0]) - 2.0) < 1e-12

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0


class TestCompressionFactor:
    def test_halved(self):
        assert compression_factor(100, 50) == 0.5

    def test_zero_original(self):
        assert compression_factor(0, 10) == 0.0

    def test_expansion_negative(self):
        assert compression_factor(10, 20) == -1.0

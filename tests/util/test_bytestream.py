"""Tests for the binary stream helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CorruptDataError
from repro.util.bytestream import ByteReader, ByteWriter
from repro.util.varint import decode_zigzag, encode_zigzag


class TestWriterReader:
    def test_varint_roundtrip(self):
        data = ByteWriter().varint(0).varint(300).varint(2**40) \
            .getvalue()
        reader = ByteReader(data)
        assert [reader.varint() for _ in range(3)] == [0, 300, 2**40]
        assert reader.exhausted

    def test_signed_roundtrip(self):
        data = ByteWriter().signed(-5).signed(0).signed(7) \
            .signed(-(2**40)).getvalue()
        reader = ByteReader(data)
        assert [reader.signed() for _ in range(4)] == \
            [-5, 0, 7, -(2**40)]

    def test_string_roundtrip(self):
        data = ByteWriter().string("héllo").string("").getvalue()
        reader = ByteReader(data)
        assert reader.string() == "héllo"
        assert reader.string() == ""

    def test_raw_and_exact(self):
        data = ByteWriter().raw(b"abc").exact(b"XY").getvalue()
        reader = ByteReader(data)
        assert reader.raw() == b"abc"
        assert reader.exact(2) == b"XY"

    def test_float64_roundtrip(self):
        data = ByteWriter().float64(3.25).float64(-0.5).getvalue()
        reader = ByteReader(data)
        assert reader.float64() == 3.25
        assert reader.float64() == -0.5

    def test_byte_roundtrip(self):
        data = ByteWriter().byte(0).byte(255).byte(300).getvalue()
        reader = ByteReader(data)
        assert [reader.byte() for _ in range(3)] == [0, 255, 300 & 0xFF]

    def test_chaining_returns_writer(self):
        writer = ByteWriter()
        assert writer.varint(1) is writer


class TestTruncation:
    @pytest.mark.parametrize("method,args", [
        ("raw", ()), ("string", ()), ("float64", ()), ("byte", ()),
        ("exact", (4,)),
    ])
    def test_truncated_reads_raise(self, method, args):
        reader = ByteReader(ByteWriter().varint(100).getvalue())
        reader.varint()
        with pytest.raises(CorruptDataError):
            getattr(reader, method)(*args)

    def test_truncated_raw_payload(self):
        data = ByteWriter().varint(10).getvalue() + b"ab"
        with pytest.raises(CorruptDataError):
            ByteReader(data).raw()


class TestZigzag:
    @given(st.integers(-(2**50), 2**50))
    def test_roundtrip(self, value):
        assert decode_zigzag(encode_zigzag(value))[0] == value

    def test_small_magnitudes_small_encodings(self):
        assert len(encode_zigzag(-1)) == 1
        assert len(encode_zigzag(1)) == 1
        assert len(encode_zigzag(-63)) == 1
        assert len(encode_zigzag(64)) == 2


@given(st.lists(st.tuples(st.sampled_from("vsrbf"),
                          st.integers(0, 2**30))))
def test_mixed_field_sequences(fields):
    """Any field sequence written is read back in order."""
    writer = ByteWriter()
    for kind, number in fields:
        if kind == "v":
            writer.varint(number)
        elif kind == "s":
            writer.string(str(number))
        elif kind == "r":
            writer.raw(number.to_bytes(4, "big"))
        elif kind == "b":
            writer.byte(number)
        else:
            writer.float64(float(number))
    reader = ByteReader(writer.getvalue())
    for kind, number in fields:
        if kind == "v":
            assert reader.varint() == number
        elif kind == "s":
            assert reader.string() == str(number)
        elif kind == "r":
            assert reader.raw() == number.to_bytes(4, "big")
        elif kind == "b":
            assert reader.byte() == number & 0xFF
        else:
            assert reader.float64() == float(number)
    assert reader.exhausted

"""Tests for the shared monotonic ns clock."""

import time

from repro.util.clock import (
    NS_PER_S,
    Stopwatch,
    elapsed_ns,
    now_ns,
    ns_to_s,
    s_to_ns,
)


class TestConversions:
    def test_round_trip(self):
        assert ns_to_s(s_to_ns(1.5)) == 1.5
        assert s_to_ns(0.25) == NS_PER_S // 4

    def test_ns_to_s_is_float_seconds(self):
        assert ns_to_s(NS_PER_S) == 1.0
        assert ns_to_s(500_000_000) == 0.5


class TestNow:
    def test_monotonic(self):
        a = now_ns()
        b = now_ns()
        assert b >= a

    def test_elapsed_nonnegative_integer(self):
        start = now_ns()
        delta = elapsed_ns(start)
        assert isinstance(delta, int)
        assert delta >= 0


class TestStopwatch:
    def test_times_the_block(self):
        with Stopwatch() as watch:
            time.sleep(0.01)
        assert watch.ns >= 5_000_000  # at least 5 ms observed
        assert watch.seconds == watch.ns / NS_PER_S

    def test_restartable(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.ns
        with watch:
            time.sleep(0.005)
        assert watch.ns >= first

"""Unit and property tests for bit-level I/O."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CorruptDataError
from repro.util.bits import BitReader, BitWriter, bits_to_bytes, bytes_to_bits


class TestBitWriter:
    def test_empty_writer(self):
        writer = BitWriter()
        assert writer.getvalue() == b""
        assert writer.bit_length == 0

    def test_single_bit(self):
        writer = BitWriter()
        writer.write_bit(1)
        assert writer.getvalue() == b"\x80"
        assert writer.bit_length == 1

    def test_full_byte(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 0, 1, 0, 1, 0):
            writer.write_bit(bit)
        assert writer.getvalue() == b"\xaa"

    def test_write_bits_msb_first(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.getvalue() == b"\xa0"

    def test_pad_bit_one(self):
        writer = BitWriter()
        writer.write_bit(0)
        assert writer.getvalue(pad_bit=1) == b"\x7f"

    def test_write_bitstring(self):
        writer = BitWriter()
        writer.write_bitstring("1100")
        assert writer.getvalue() == b"\xc0"
        assert writer.bit_length == 4

    def test_len(self):
        writer = BitWriter()
        writer.write_bits(0, 13)
        assert len(writer) == 13


class TestBitReader:
    def test_read_bits_roundtrip(self):
        writer = BitWriter()
        writer.write_bits(0x2BD, 10)
        reader = BitReader(writer.getvalue(), 10)
        assert reader.read_bits(10) == 0x2BD

    def test_exhaustion_raises(self):
        reader = BitReader(b"\x80", 1)
        reader.read_bit()
        with pytest.raises(CorruptDataError):
            reader.read_bit()

    def test_declared_length_too_long(self):
        with pytest.raises(CorruptDataError):
            BitReader(b"\x00", 9)

    def test_peek_does_not_consume(self):
        reader = BitReader(b"\x80", 1)
        assert reader.peek_bit() == 1
        assert reader.read_bit() == 1
        assert reader.peek_bit() is None

    def test_remaining(self):
        reader = BitReader(b"\xff", 5)
        reader.read_bits(2)
        assert reader.remaining == 3


@given(st.text(alphabet="01", max_size=200))
def test_bits_bytes_roundtrip(bits):
    data = bits_to_bytes(bits)
    assert bytes_to_bits(data, len(bits)) == bits


@given(st.lists(st.integers(0, 1), max_size=300))
def test_writer_reader_roundtrip(bits):
    writer = BitWriter()
    for bit in bits:
        writer.write_bit(bit)
    reader = BitReader(writer.getvalue(), writer.bit_length)
    assert [reader.read_bit() for _ in bits] == bits

"""Tests for varint encoding and size helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CorruptDataError
from repro.util.varint import (
    decode_varint,
    delta_sizes,
    encode_varint,
    varint_size,
)


class TestVarint:
    def test_small_values_one_byte(self):
        for value in (0, 1, 127):
            assert len(encode_varint(value)) == 1
            assert varint_size(value) == 1

    def test_boundaries(self):
        assert varint_size(128) == 2
        assert varint_size(16383) == 2
        assert varint_size(16384) == 3

    def test_roundtrip(self):
        for value in (0, 1, 127, 128, 300, 10**9):
            data = encode_varint(value)
            decoded, offset = decode_varint(data)
            assert decoded == value
            assert offset == len(data)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_negative_size_estimated(self):
        assert varint_size(-1) == 1
        assert varint_size(-1000) == 2

    def test_truncated_decode(self):
        with pytest.raises(CorruptDataError):
            decode_varint(b"\x80")

    def test_overlong_decode(self):
        with pytest.raises(CorruptDataError):
            decode_varint(b"\xff" * 11)

    def test_decode_with_offset(self):
        data = encode_varint(5) + encode_varint(300)
        value, offset = decode_varint(data, 1)
        assert value == 300 and offset == len(data)


class TestDeltaSizes:
    def test_dense_ascending_is_one_byte_each(self):
        assert delta_sizes(list(range(100, 200))) == 100

    def test_empty(self):
        assert delta_sizes([]) == 0

    def test_first_value_counted_from_zero(self):
        assert delta_sizes([300]) == varint_size(300)


@given(st.integers(0, 2**62))
def test_roundtrip_property(value):
    data = encode_varint(value)
    assert len(data) == varint_size(value)
    assert decode_varint(data)[0] == value

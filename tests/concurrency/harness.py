"""A deterministic, seeded, barrier-driven interleaving harness.

``threading`` gives no control over *when* each thread runs, so a
naive stress test only ever explores whatever interleaving the OS
scheduler happens to produce — green today, deadlocked in CI next
month.  :class:`InterleavingScheduler` takes the scheduler out of the
picture: worker threads pause at explicit :func:`checkpoint` calls and
a controller grants exactly one worker at a time permission to run to
its next checkpoint, picking the order from a seeded RNG.  The same
seed always replays the same interleaving, so a failure is a pinned
regression instead of a flake — and different seeds explore genuinely
different acquisition orders.

Permits and acknowledgements are semaphores, not events: a semaphore
counts, so a grant issued before the worker blocks is never lost.
Every wait carries a timeout — a worker that cannot reach its next
checkpoint (deadlock) fails the test with a diagnosis instead of
hanging the suite (CI additionally runs this under ``faulthandler``
with a hard external timeout).
"""

from __future__ import annotations

import random
import threading
from typing import Callable

#: generous per-step bound: any single step is sub-millisecond work,
#: so a step that takes this long is a deadlock, not a slow machine.
DEFAULT_STEP_TIMEOUT = 60.0


class DeadlockDetected(AssertionError):
    """A worker failed to reach its next checkpoint in time."""


class InterleavingScheduler:
    """Serializes worker steps in a seeded pseudo-random order.

    Usage::

        sched = InterleavingScheduler(seed=11)
        sched.spawn("writer", lambda step: (op1(), step(), op2()))
        sched.spawn("reader", lambda step: (op3(), step(), op4()))
        sched.run()   # raises on worker error or deadlock

    Each worker receives a ``step`` callable and must call it between
    operations; the code between two ``step()`` calls runs while every
    other worker is parked at a checkpoint.
    """

    def __init__(self, seed: int,
                 step_timeout: float = DEFAULT_STEP_TIMEOUT):
        self.rng = random.Random(seed)
        self.step_timeout = step_timeout
        self._permits: dict[str, threading.Semaphore] = {}
        self._threads: dict[str, threading.Thread] = {}
        self._ack = threading.Semaphore(0)
        self._finished: set[str] = set()
        self._errors: dict[str, BaseException] = {}
        self.steps_granted = 0

    def spawn(self, name: str,
              worker: Callable[[Callable[[], None]], None]) -> None:
        """Register and start a worker (parked until :meth:`run`)."""
        if name in self._permits:
            raise ValueError(f"duplicate worker name {name!r}")
        permit = threading.Semaphore(0)
        self._permits[name] = permit

        def step() -> None:
            self._ack.release()
            if not permit.acquire(timeout=self.step_timeout):
                raise DeadlockDetected(
                    f"worker {name!r} starved waiting for a permit")

        def run() -> None:
            try:
                if not permit.acquire(timeout=self.step_timeout):
                    raise DeadlockDetected(
                        f"worker {name!r} never granted a first step")
                worker(step)
            except BaseException as exc:  # noqa: BLE001 - reraised in run()
                self._errors[name] = exc
            finally:
                self._finished.add(name)
                self._ack.release()

        thread = threading.Thread(target=run, name=name, daemon=True)
        self._threads[name] = thread
        thread.start()

    def run(self) -> int:
        """Drive all workers to completion; returns steps granted.

        Re-raises the first worker exception; raises
        :class:`DeadlockDetected` when a granted worker never reaches
        its next checkpoint (or completion) within the step timeout.
        """
        live = sorted(self._permits)
        while live:
            name = self.rng.choice(live)
            self._permits[name].release()
            self.steps_granted += 1
            if not self._ack.acquire(timeout=self.step_timeout):
                raise DeadlockDetected(
                    f"worker {name!r} was granted a step but never "
                    "reached its next checkpoint: likely deadlock "
                    f"after {self.steps_granted} steps")
            live = sorted(n for n in self._permits
                          if n not in self._finished)
        for name, thread in self._threads.items():
            thread.join(timeout=self.step_timeout)
            if thread.is_alive():
                raise DeadlockDetected(
                    f"worker {name!r} finished stepping but its "
                    "thread did not exit")
        for name in sorted(self._errors):
            raise self._errors[name]
        return self.steps_granted

"""Seeded interleaving schedules over the whole serving surface.

Each test drives Session / PlanCache / BlockCache / WorkloadJournal /
MetricsRegistry from multiple workers under the deterministic
:class:`~tests.concurrency.harness.InterleavingScheduler`, with a
:class:`~repro.obs.lockwatch.LockOrderWatchdog` wrapping the
inventoried locks.  The assertions are the Tier-C contract at runtime:
no witnessed lock-order inversion, no observed order that inverts a
static-graph edge, and no deadlock (the harness raises instead of
hanging; CI adds ``faulthandler`` plus a hard timeout on top).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.concurrency import lint_concurrency
from repro.obs.lockwatch import LockOrderWatchdog, watch_session
from repro.query.options import ExecutionOptions
from repro.service.session import Session
from repro.xmark.generator import generate_xmark
from repro.xmark.queries import query_text

from tests.concurrency.harness import InterleavingScheduler

REPRO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: the seeded schedules CI runs; three genuinely different orders.
SEEDS = (11, 23, 37)


@pytest.fixture(scope="module")
def repository():
    from repro.storage.loader import load_document
    return load_document(generate_xmark(factor=0.005, seed=42))


@pytest.fixture(scope="module")
def static_edges():
    return lint_concurrency([REPRO_SRC]).static_edges()


@pytest.fixture(scope="module")
def expected_q1(repository):
    return Session(repository).execute(query_text("Q1")).to_xml()


def _assert_discipline(watchdog: LockOrderWatchdog) -> None:
    """The runtime lock-discipline contract, shared by every seed."""
    assert watchdog.violations() == []
    observed = watchdog.observed_edges()
    static = watchdog.static
    inverted = {(a, b) for (a, b) in observed if (b, a) in static}
    assert inverted == set(), \
        f"observed orders invert static edges: {sorted(inverted)}"


@pytest.mark.parametrize("seed", SEEDS)
def test_serving_surface_interleaved(seed, repository, static_edges,
                                     expected_q1, tmp_path):
    session = Session(repository,
                      journal=tmp_path / f"stress-{seed}.jsonl")
    watchdog = LockOrderWatchdog(static_edges)
    watch_session(watchdog, session)
    outputs: list[str] = []

    def executor(step):
        outputs.append(session.execute(query_text("Q1")).to_xml())
        step()
        outputs.append(session.execute(query_text("Q1")).to_xml())
        step()
        # A recorded run: takes the activation lock, then journal +
        # recorder locks inside the engine.
        outputs.append(session.execute(
            query_text("Q1"),
            ExecutionOptions(record=True)).to_xml())

    def invalidator(step):
        session.invalidate_caches()
        step()
        session.plan_cache.invalidate()
        step()
        session.block_cache.invalidate()

    def metrician(step):
        session.metrics.add("stress.ticks")
        step()
        session.metrics.observe("stress.lat", 1.5)
        step()
        session.metrics.counters()
        session.metrics.histograms()

    def journalist(step):
        session.recorder.journal.append({"seed": seed, "op": 1})
        step()
        session.recorder.journal.append({"seed": seed, "op": 2})

    with watchdog:
        sched = InterleavingScheduler(seed)
        sched.spawn("executor", executor)
        sched.spawn("invalidator", invalidator)
        sched.spawn("metrician", metrician)
        sched.spawn("journalist", journalist)
        steps = sched.run()

    assert steps >= 10  # every worker actually stepped.
    assert outputs == [expected_q1] * 3
    _assert_discipline(watchdog)
    # The journal interleaved whole lines, never torn ones.
    records = session.recorder.journal.records()
    assert {(r["seed"], r["op"]) for r in records
            if "op" in r} >= {(seed, 1), (seed, 2)}


@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_replays_same_schedule(seed):
    """The harness itself is deterministic: the property that turns a
    failing schedule into a pinned regression."""

    def trace_of() -> list[str]:
        log: list[str] = []

        def worker(name):
            def body(step):
                log.append(f"{name}.a")
                step()
                log.append(f"{name}.b")
            return body

        sched = InterleavingScheduler(seed)
        for name in ("w1", "w2", "w3"):
            sched.spawn(name, worker(name))
        sched.run()
        return log

    assert trace_of() == trace_of()


def test_watchdog_crosscheck_feeds_on_real_static_graph(
        repository, static_edges, expected_q1):
    """Novel edges (observed but statically invisible) are reported
    for triage, not silently merged into the verified graph."""
    session = Session(repository)
    watchdog = LockOrderWatchdog(static_edges)
    with watchdog:
        watch_session(watchdog, session)
        assert session.execute(query_text("Q1")).to_xml() \
            == expected_q1
    assert watchdog.violations() == []
    for edge in watchdog.novel_edges():
        assert edge not in static_edges
    report = watchdog.report()
    assert set(report) == {"observed_edges", "violations",
                           "novel_edges"}

"""LockOrderWatchdog unit behaviour: proxies, orders, inversions."""

from __future__ import annotations

import threading

from repro.obs.lockwatch import (
    LockOrderWatchdog,
    WatchedLock,
    watch_session,
)
from repro.service.cache import PlanCache


class TestWatchedLock:
    def test_forwards_lock_protocol(self):
        watchdog = LockOrderWatchdog()
        lock = watchdog.wrap(threading.Lock(), "t.lock")
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()
        assert lock.acquire(blocking=False)
        lock.release()

    def test_wrap_is_idempotent(self):
        watchdog = LockOrderWatchdog()
        lock = watchdog.wrap(threading.Lock(), "t.lock")
        assert watchdog.wrap(lock, "t.lock") is lock

    def test_rlock_reentrancy_records_no_self_edge(self):
        watchdog = LockOrderWatchdog()
        lock = watchdog.wrap(threading.RLock(), "t.rlock")
        with lock:
            with lock:
                pass
        assert watchdog.observed_edges() == set()
        assert watchdog.violations() == []


class TestOrderRecording:
    def test_nested_order_observed(self):
        watchdog = LockOrderWatchdog()
        outer = watchdog.wrap(threading.Lock(), "outer")
        inner = watchdog.wrap(threading.Lock(), "inner")
        with outer:
            with inner:
                pass
        assert watchdog.observed_edges() == {("outer", "inner")}
        assert watchdog.violations() == []

    def test_inversion_detected(self):
        watchdog = LockOrderWatchdog()
        a = watchdog.wrap(threading.Lock(), "a")
        b = watchdog.wrap(threading.Lock(), "b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        [violation] = watchdog.violations()
        assert {violation.edge, violation.inverse} == \
            {("a", "b"), ("b", "a")}
        assert "inversion" in violation.describe()

    def test_inversion_across_threads_detected(self):
        watchdog = LockOrderWatchdog()
        a = watchdog.wrap(threading.Lock(), "a")
        b = watchdog.wrap(threading.Lock(), "b")

        def forward():
            with a:
                with b:
                    pass

        thread = threading.Thread(target=forward, daemon=True)
        thread.start()
        thread.join(timeout=30.0)
        with b:
            with a:
                pass
        assert len(watchdog.violations()) == 1

    def test_crosscheck_against_static_graph(self):
        watchdog = LockOrderWatchdog(static_edges={("a", "b")})
        a = watchdog.wrap(threading.Lock(), "a")
        b = watchdog.wrap(threading.Lock(), "b")
        c = watchdog.wrap(threading.Lock(), "c")
        with a:
            with b:
                pass
        with a:
            with c:
                pass
        assert watchdog.novel_edges() == {("a", "c")}

    def test_no_static_graph_means_no_crosscheck(self):
        watchdog = LockOrderWatchdog()
        a = watchdog.wrap(threading.Lock(), "a")
        b = watchdog.wrap(threading.Lock(), "b")
        with a:
            with b:
                pass
        assert watchdog.novel_edges() == set()


class TestInPlaceWatching:
    def test_watch_and_unwatch_restore_attribute(self):
        cache = PlanCache(capacity=4)
        original = cache._lock
        watchdog = LockOrderWatchdog()
        proxy = watchdog.watch(cache, "_lock", "PlanCache._lock")
        assert isinstance(cache._lock, WatchedLock)
        assert cache._lock is proxy
        assert proxy.wrapped is original
        cache.put("q", object())
        assert cache.get("q") is not None
        watchdog.unwatch_all()
        assert cache._lock is original

    def test_context_manager_unwatches(self):
        cache = PlanCache(capacity=4)
        original = cache._lock
        with LockOrderWatchdog() as watchdog:
            watchdog.watch(cache, "_lock", "PlanCache._lock")
            assert cache._lock is not original
        assert cache._lock is original

    def test_watch_session_covers_serving_locks(self, tmp_path):
        from repro.service.session import Session
        from repro.storage.loader import load_document
        from repro.xmark.generator import generate_xmark
        session = Session(
            load_document(generate_xmark(factor=0.003, seed=7)),
            journal=tmp_path / "w.jsonl")
        watchdog = LockOrderWatchdog()
        with watchdog:
            watch_session(watchdog, session)
            assert isinstance(session._activation_lock, WatchedLock)
            assert isinstance(session.plan_cache._lock, WatchedLock)
            assert isinstance(session.block_cache._lock, WatchedLock)
            assert isinstance(session.metrics._lock, WatchedLock)
            assert isinstance(session.recorder._count_lock,
                              WatchedLock)
            assert isinstance(session.recorder.journal._lock,
                              WatchedLock)
        assert not isinstance(session.plan_cache._lock, WatchedLock)

"""Cache invalidation under load (ISSUE 7 satellite).

``invalidate_caches()`` racing a 4-worker ``execute_many`` must
neither deadlock nor serve stale plan/block entries: every result must
equal serial execution, the batch must finish in bounded time, and a
final invalidation must leave both caches genuinely empty.
"""

from __future__ import annotations

import threading

import pytest

from repro.service.session import Session
from repro.xmark.generator import generate_xmark
from repro.xmark.queries import query_text

QUERY_IDS = ("Q1", "Q2", "Q5", "Q8")


@pytest.fixture(scope="module")
def repository():
    from repro.storage.loader import load_document
    return load_document(generate_xmark(factor=0.005, seed=42))


@pytest.fixture(scope="module")
def serial_results(repository):
    session = Session(repository)
    return {qid: session.execute(query_text(qid)).to_xml()
            for qid in QUERY_IDS}


def test_invalidate_races_execute_many(repository, serial_results):
    session = Session(repository)
    queries = [query_text(qid) for qid in QUERY_IDS] * 6
    stop = threading.Event()
    invalidations = 0

    def invalidator() -> None:
        nonlocal invalidations
        while not stop.is_set():
            session.invalidate_caches()
            invalidations += 1

    thread = threading.Thread(target=invalidator,
                              name="invalidator", daemon=True)
    thread.start()
    try:
        results = session.execute_many(queries, max_workers=4)
    finally:
        stop.set()
        thread.join(timeout=60.0)
    assert not thread.is_alive(), \
        "invalidator thread wedged: deadlock with execute_many"
    assert invalidations > 0

    # Correctness under invalidation churn: every result matches
    # serial execution — a stale plan or block would diverge.
    expected = [serial_results[qid] for qid in QUERY_IDS] * 6
    assert [r.to_xml() for r in results] == expected

    # Accounting stayed coherent: every prepare either hit or missed.
    counters = session.metrics.counters()
    assert counters["session.executions"] == len(queries)
    assert counters["cache.plan.hit"] + counters["cache.plan.miss"] \
        == len(queries)

    # A final invalidation leaves nothing resident.
    session.invalidate_caches()
    assert len(session.plan_cache) == 0
    assert len(session.block_cache) == 0
    assert session.block_cache.used_bytes == 0


def test_invalidated_entries_are_rebuilt_not_served(repository):
    """After an invalidation, the next execution re-derives the plan
    (a miss), it does not resurrect the dropped entry."""
    session = Session(repository)
    session.execute(query_text("Q1"))
    session.execute(query_text("Q1"))
    counters = session.metrics.counters()
    assert counters["cache.plan.miss"] == 1
    assert counters["cache.plan.hit"] == 1

    session.invalidate_caches()
    session.execute(query_text("Q1"))
    counters = session.metrics.counters()
    assert counters["cache.plan.miss"] == 2

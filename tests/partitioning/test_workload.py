"""Tests for workload predicates and the E/I/D matrices."""

import numpy as np
import pytest

from repro.partitioning.workload import Predicate, Workload


class TestPredicate:
    def test_kinds_validated(self):
        with pytest.raises(ValueError):
            Predicate("like", "/a")

    def test_join_detection(self):
        assert Predicate("eq", "/a", "/b").is_join
        assert not Predicate("eq", "/a").is_join

    def test_paths(self):
        assert Predicate("ineq", "/a", "/b").paths() == ("/a", "/b")
        assert Predicate("wild", "/a").paths() == ("/a",)


class TestMatrices:
    PATHS = ["/a", "/b", "/c"]

    def test_join_symmetric(self):
        workload = Workload([Predicate("eq", "/a", "/b")])
        E = workload.matrices(self.PATHS)["eq"]
        assert E[0, 1] == 1 and E[1, 0] == 1
        assert E.sum() == 2

    def test_constant_column(self):
        workload = Workload([Predicate("ineq", "/b")])
        I = workload.matrices(self.PATHS)["ineq"]
        assert I[1, 3] == 1 and I[3, 1] == 1

    def test_self_comparison_diagonal(self):
        workload = Workload([Predicate("eq", "/c", "/c")])
        E = workload.matrices(self.PATHS)["eq"]
        assert E[2, 2] == 1

    def test_kinds_separated(self):
        workload = Workload([
            Predicate("eq", "/a", "/b"),
            Predicate("ineq", "/a", "/b"),
            Predicate("wild", "/a"),
        ])
        m = workload.matrices(self.PATHS)
        assert m["eq"][0, 1] == 1
        assert m["ineq"][0, 1] == 1
        assert m["wild"][0, 3] == 1
        assert m["wild"][0, 1] == 0

    def test_unknown_paths_ignored(self):
        workload = Workload([Predicate("eq", "/nope", "/a"),
                             Predicate("eq", "/a", "/nope")])
        E = workload.matrices(self.PATHS)["eq"]
        assert E.sum() == 0

    def test_counts_accumulate(self):
        workload = Workload([Predicate("eq", "/a", "/b")] * 3)
        E = workload.matrices(self.PATHS)["eq"]
        assert E[0, 1] == 3

    def test_matrix_shape_and_dtype(self):
        m = Workload().matrices(self.PATHS)
        for matrix in m.values():
            assert matrix.shape == (4, 4)
            assert matrix.dtype == np.int64

    def test_touched_paths(self):
        workload = Workload([Predicate("eq", "/a", "/b"),
                             Predicate("wild", "/c")])
        assert workload.touched_paths() == {"/a", "/b", "/c"}

    def test_add_and_len(self):
        workload = Workload()
        workload.add(Predicate("eq", "/a"))
        assert len(workload) == 1

"""Tests for compression configurations and moves."""

import pytest

from repro.partitioning.config import (
    CompressionConfiguration,
    ContainerGroup,
)


class TestValidation:
    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            ContainerGroup((), "alm")

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError):
            CompressionConfiguration(groups=[
                ContainerGroup(("a",), "alm"),
                ContainerGroup(("a", "b"), "huffman"),
            ])

    def test_singletons(self):
        config = CompressionConfiguration.singletons(["a", "b"], "bzip2")
        assert len(config.groups) == 2
        assert config.algorithm_of("a") == "bzip2"


class TestLookup:
    def test_group_of(self):
        config = CompressionConfiguration(groups=[
            ContainerGroup(("a", "b"), "alm")])
        assert config.group_of("a") is config.group_of("b")
        assert config.group_of("zzz") is None
        assert config.algorithm_of("zzz") is None

    def test_paths(self):
        config = CompressionConfiguration(groups=[
            ContainerGroup(("b",), "alm"), ContainerGroup(("a",), "alm")])
        assert config.paths() == ["a", "b"]


class TestMoves:
    @pytest.fixture
    def config(self):
        return CompressionConfiguration(groups=[
            ContainerGroup(("a", "b"), "bzip2"),
            ContainerGroup(("c",), "bzip2"),
        ])

    def test_with_algorithm(self, config):
        group = config.group_of("a")
        updated = config.with_algorithm(group, "alm")
        assert updated.algorithm_of("a") == "alm"
        assert updated.algorithm_of("c") == "bzip2"
        # original untouched
        assert config.algorithm_of("a") == "bzip2"

    def test_with_pair_extracted(self, config):
        updated = config.with_pair_extracted("a", "c", "alm")
        new_group = updated.group_of("a")
        assert new_group is updated.group_of("c")
        assert new_group.algorithm == "alm"
        assert updated.group_of("b").container_paths == ("b",)

    def test_extract_empties_singleton_group(self, config):
        updated = config.with_pair_extracted("b", "c", "huffman")
        assert len(updated.groups) == 2  # {a}, {b,c}

    def test_with_groups_merged(self, config):
        merged = config.with_groups_merged(
            config.groups[0], config.groups[1], "alm")
        assert len(merged.groups) == 1
        assert set(merged.groups[0].container_paths) == {"a", "b", "c"}

    def test_merge_same_group_rejected(self, config):
        with pytest.raises(ValueError):
            config.with_groups_merged(config.groups[0], config.groups[0],
                                      "alm")

"""Tests for the simulated-annealing configuration search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning.config import CompressionConfiguration
from repro.partitioning.cost import ContainerProfile, CostModel
from repro.partitioning.search import annealing_search, greedy_search
from repro.partitioning.workload import Predicate, Workload
from repro.xmark.text_source import TextSource


def profiles():
    source = TextSource(seed=44)
    prose = [source.sentence() for _ in range(150)]
    names = [source.person_name() for _ in range(200)]
    dates = [source.date() for _ in range(250)]
    return [
        ContainerProfile.from_values("/p1", prose),
        ContainerProfile.from_values("/p2", prose),
        ContainerProfile.from_values("/names", names),
        ContainerProfile.from_values("/dates", dates),
    ]


WORKLOAD = Workload([
    Predicate("ineq", "/p1", "/p2"),
    Predicate("ineq", "/names"),
    Predicate("eq", "/dates"),
] * 2)


class TestAnnealingSearch:
    def test_valid_configuration(self):
        config, cost = annealing_search(profiles(), WORKLOAD, seed=5)
        assert sorted(config.paths()) == ["/dates", "/names", "/p1",
                                          "/p2"]
        assert cost == CostModel(profiles(), WORKLOAD).cost(config)

    def test_never_worse_than_initial(self):
        prof = profiles()
        model = CostModel(prof, WORKLOAD)
        initial = CompressionConfiguration.singletons(
            [p.path for p in prof], "bzip2")
        _, cost = annealing_search(prof, WORKLOAD, seed=5)
        assert cost <= model.cost(initial)

    def test_competitive_with_greedy(self):
        prof = profiles()
        _, greedy_cost = greedy_search(prof, WORKLOAD, seed=5)
        _, annealing_cost = annealing_search(prof, WORKLOAD, seed=5,
                                             iterations=600)
        # The global search must reach at least near the greedy's
        # locally optimal cost (usually it matches or beats it).
        assert annealing_cost <= greedy_cost * 1.10

    def test_deterministic_per_seed(self):
        prof = profiles()
        a = annealing_search(prof, WORKLOAD, seed=9, iterations=120)
        b = annealing_search(prof, WORKLOAD, seed=9, iterations=120)
        assert a[1] == b[1] and repr(a[0]) == repr(b[0])

    def test_empty_inputs(self):
        config, _ = annealing_search([], Workload(), seed=1)
        assert config.paths() == []

    def test_single_container(self):
        prof = [profiles()[0]]
        config, _ = annealing_search(
            prof, Workload([Predicate("ineq", "/p1")]), seed=1,
            iterations=100)
        assert config.paths() == ["/p1"]


@settings(deadline=None, max_examples=10)
@given(st.integers(0, 10_000))
def test_annealing_best_never_exceeds_visited(seed):
    """The returned cost is the model cost of the returned config."""
    prof = profiles()
    model = CostModel(prof, WORKLOAD)
    config, cost = annealing_search(prof, WORKLOAD, seed=seed,
                                    iterations=150)
    assert cost == pytest.approx(model.cost(config))

"""Tests for the §3.3 greedy configuration search."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partitioning.config import CompressionConfiguration
from repro.partitioning.cost import ContainerProfile, CostModel
from repro.partitioning.search import (
    choose_enabling_algorithm,
    greedy_search,
)
from repro.partitioning.workload import Predicate, Workload

PROSE = ["the quick brown fox jumps over the lazy dog again"] * 30
NAMES = ["John Smith", "Jane Poe", "Judy Moe", "Jack Doe"] * 30
DATES = ["1999-12-31", "2000-01-01", "2011-06-15", "1987-03-21"] * 30


def profiles():
    return [
        ContainerProfile.from_values("/p1", PROSE),
        ContainerProfile.from_values("/p2", PROSE),
        ContainerProfile.from_values("/names", NAMES),
        ContainerProfile.from_values("/dates", DATES),
    ]


class TestChooseEnablingAlgorithm:
    def test_ineq_selects_order_preserving(self):
        assert choose_enabling_algorithm(
            "ineq", ("alm", "huffman", "bzip2")) == "alm"

    def test_wild_selects_huffman(self):
        assert choose_enabling_algorithm(
            "wild", ("alm", "huffman", "bzip2")) == "huffman"

    def test_nothing_enables(self):
        assert choose_enabling_algorithm("ineq", ("huffman", "bzip2")) \
            is None

    def test_hutucker_dominates_when_available(self):
        # eq+ineq+wild all true: most properties.
        assert choose_enabling_algorithm(
            "eq", ("alm", "huffman", "hutucker")) == "hutucker"


class TestGreedySearch:
    def test_no_workload_keeps_initial(self):
        config, _ = greedy_search(profiles(), Workload(), seed=1)
        assert all(g.algorithm == "bzip2" for g in config.groups)
        assert len(config.groups) == 4

    def test_inequality_workload_switches_to_alm(self):
        workload = Workload([Predicate("ineq", "/names")] * 5)
        config, _ = greedy_search(profiles(), workload, seed=1)
        assert config.algorithm_of("/names") == "alm"

    def test_join_groups_similar_containers(self):
        workload = Workload([Predicate("ineq", "/p1", "/p2")] * 5)
        config, _ = greedy_search(profiles(), workload, seed=1)
        assert config.group_of("/p1") is config.group_of("/p2")
        assert config.algorithm_of("/p1") == "alm"

    def test_untouched_containers_keep_generic_compression(self):
        workload = Workload([Predicate("eq", "/names")] * 3)
        config, _ = greedy_search(profiles(), workload, seed=1)
        assert config.algorithm_of("/dates") == "bzip2"

    def test_never_worse_than_initial(self):
        workload = Workload([
            Predicate("ineq", "/p1", "/p2"),
            Predicate("eq", "/names"),
            Predicate("wild", "/dates"),
        ])
        model = CostModel(profiles(), workload)
        initial = CompressionConfiguration.singletons(
            [p.path for p in profiles()], "bzip2")
        config, cost = greedy_search(profiles(), workload, seed=7)
        assert cost <= model.cost(initial)

    def test_returned_cost_matches_model(self):
        workload = Workload([Predicate("ineq", "/p1", "/p2")])
        model = CostModel(profiles(), workload)
        config, cost = greedy_search(profiles(), workload, seed=3)
        assert cost == model.cost(config)

    def test_deterministic_for_fixed_seed(self):
        workload = Workload([
            Predicate("ineq", "/p1", "/p2"),
            Predicate("eq", "/names", "/dates"),
        ])
        a = greedy_search(profiles(), workload, seed=42)
        b = greedy_search(profiles(), workload, seed=42)
        assert repr(a[0]) == repr(b[0]) and a[1] == b[1]

    def test_unknown_paths_in_predicates_skipped(self):
        workload = Workload([Predicate("ineq", "/ghost", "/p1")])
        config, _ = greedy_search(profiles(), workload, seed=1)
        assert config.paths() == ["/dates", "/names", "/p1", "/p2"]


@settings(deadline=None, max_examples=25)
@given(st.lists(st.tuples(
    st.sampled_from(["eq", "ineq", "wild"]),
    st.sampled_from(["/p1", "/p2", "/names", "/dates"]),
    st.sampled_from([None, "/p1", "/p2", "/names", "/dates"])),
    max_size=8),
    st.integers(0, 10_000))
def test_search_never_increases_cost(predicate_specs, seed):
    """Property: greedy result always <= initial configuration cost."""
    workload = Workload([Predicate(kind, left, right)
                         for kind, left, right in predicate_specs])
    prof = profiles()
    model = CostModel(prof, workload)
    initial = CompressionConfiguration.singletons(
        [p.path for p in prof], "bzip2")
    _, cost = greedy_search(prof, workload, seed=seed)
    assert cost <= model.cost(initial) + 1e-9

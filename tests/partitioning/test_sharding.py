"""Shard assignment by structure-summary subtree."""

import pytest

from repro.partitioning import ShardAssignment, assign_shards, subtree_key
from repro.partitioning.sharding import (
    assign_subtrees,
    profiles_from_repository,
    subtree_weights,
)
from repro.partitioning.workload import Predicate, Workload
from repro.storage.loader import load_document
from repro.xmark.generator import generate_xmark
from repro.xmark.queries import XMARK_QUERIES, query_text


@pytest.fixture(scope="module")
def repository():
    return load_document(generate_xmark(factor=0.002, seed=1))


class TestSubtreeKey:
    def test_two_step_paths(self):
        assert subtree_key(
            "/site/people/person/name/#text") == "/site/people"
        assert subtree_key(
            "/site/categories/category/@id") == "/site/categories"

    def test_shallow_paths(self):
        assert subtree_key("/site") == "/site"
        assert subtree_key("/site/people") == "/site/people"
        assert subtree_key("/") == "/"

    def test_attribute_second_step_is_kept(self):
        # The key is purely positional: two path components.
        assert subtree_key("/a/@id") == "/a/@id"


class TestAssignSubtrees:
    def test_balances_by_weight(self):
        weights = {f"/r/s{i}": 10.0 for i in range(8)}
        assignment = assign_subtrees(weights, 4)
        sizes = [len(g) for g in assignment.subtrees_by_shard]
        assert sizes == [2, 2, 2, 2]
        assert all(w == pytest.approx(20.0)
                   for w in assignment.weights)

    def test_heaviest_first_lpt(self):
        weights = {"/r/a": 100.0, "/r/b": 60.0, "/r/c": 40.0,
                   "/r/d": 5.0}
        assignment = assign_subtrees(weights, 2)
        # LPT: a alone; b, c (and the tiny d) on the other shard.
        shard_of = assignment.shard_of_subtree
        assert shard_of("/r/b") == shard_of("/r/c")
        assert shard_of("/r/a") != shard_of("/r/b")

    def test_deterministic(self):
        weights = {f"/r/s{i}": float(i % 3 + 1) for i in range(12)}
        first = assign_subtrees(weights, 3)
        second = assign_subtrees(dict(reversed(list(weights.items()))),
                                 3)
        assert first.subtrees_by_shard == second.subtrees_by_shard

    def test_affinity_co_locates_joined_subtrees(self):
        weights = {"/r/a": 50.0, "/r/b": 48.0, "/r/c": 47.0,
                   "/r/d": 46.0}
        affinity = {"/r/a": {"/r/d"}, "/r/d": {"/r/a"}}
        assignment = assign_subtrees(weights, 2, affinity)
        shard_of = assignment.shard_of_subtree
        assert shard_of("/r/a") == shard_of("/r/d")

    def test_affinity_bounded_by_slack(self):
        # The partner shard is far heavier than the slack budget
        # allows: balance wins, the join stays cross-shard.
        weights = {"/r/a": 1000.0, "/r/b": 10.0, "/r/c": 9.0}
        affinity = {"/r/c": {"/r/a"}, "/r/a": {"/r/c"}}
        assignment = assign_subtrees(weights, 2, affinity)
        shard_of = assignment.shard_of_subtree
        assert shard_of("/r/c") != shard_of("/r/a")

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            assign_subtrees({"/r/a": 1.0}, 0)


class TestShardAssignment:
    def test_unknown_subtree_hashes_stably(self):
        assignment = ShardAssignment(3, [["/r/a"], ["/r/b"], []],
                                     [1.0, 1.0, 0.0])
        first = assignment.shard_of_subtree("/r/zzz")
        assert first == assignment.shard_of_subtree("/r/zzz")
        assert 0 <= first < 3

    def test_route_majority_and_cross(self):
        assignment = ShardAssignment(
            2, [["/site/people"], ["/site/open_auctions"]],
            [1.0, 1.0])
        shard, cross = assignment.route(
            ["/site/people/person/name/#text",
             "/site/people/person/@id"])
        assert (shard, cross) == (0, False)
        shard, cross = assignment.route(
            ["/site/people/person/@id",
             "/site/open_auctions/open_auction/@id"])
        assert cross is True

    def test_route_empty_uses_fallback_key(self):
        assignment = ShardAssignment(4, [[], [], [], []],
                                     [0.0] * 4)
        assert assignment.route([], "Q1") \
            == assignment.route([], "Q1")

    def test_to_dict_round(self):
        assignment = ShardAssignment(2, [["/r/a"], ["/r/b"]],
                                     [1.5, 2.5])
        document = assignment.to_dict()
        assert document["shard_count"] == 2
        assert document["shards"][1]["subtrees"] == ["/r/b"]


class TestAssignShards:
    def test_covers_every_container_subtree(self, repository):
        assignment = assign_shards(repository, 3)
        owned = {key for group in assignment.subtrees_by_shard
                 for key in group}
        for path in repository.container_paths():
            assert subtree_key(path) in owned

    def test_single_shard_owns_everything(self, repository):
        assignment = assign_shards(repository, 1)
        assert assignment.shard_count == 1
        assert len(assignment.subtrees_by_shard[0]) >= 2

    def test_workload_skews_weights(self, repository):
        profiles = profiles_from_repository(repository)
        cold = subtree_weights(profiles)
        hot_path = "/site/people/person/name/#text"
        workload = Workload()
        for _ in range(50):
            workload.add(Predicate("eq", hot_path))
        hot = subtree_weights(profiles, workload)
        assert hot["/site/people"] > cold["/site/people"]
        assert hot["/site/regions"] == cold["/site/regions"]

    def test_xmark_workload_placement_is_deterministic(self,
                                                       repository):
        texts = [query_text(qid) for qid in XMARK_QUERIES]
        first = assign_shards(repository, 4, queries=texts)
        second = assign_shards(repository, 4, queries=texts)
        assert first.subtrees_by_shard == second.subtrees_by_shard

"""Tests for similarity-based source-model clustering."""

import pytest

from repro.core.system import XQueCSystem
from repro.partitioning.similarity import cluster_by_similarity
from repro.xmark.text_source import TextSource


def families():
    source = TextSource(seed=21)
    prose = [[source.sentence() for _ in range(60)] for _ in range(3)]
    dates = [[source.date() for _ in range(80)] for _ in range(2)]
    return prose, dates


class TestClusterBySimilarity:
    def test_families_separate(self):
        prose, dates = families()
        clusters = cluster_by_similarity(prose + dates, threshold=0.55)
        by_index = {i: c for c in clusters for i in c}
        # The three prose lists cluster together, dates together,
        # and never with each other.
        assert by_index[0] == by_index[1] == by_index[2]
        assert by_index[3] == by_index[4]
        assert by_index[0] != by_index[3]

    def test_threshold_one_keeps_singletons(self):
        prose, dates = families()
        clusters = cluster_by_similarity(prose + dates, threshold=1.01)
        assert all(len(c) == 1 for c in clusters)

    def test_threshold_zero_merges_all(self):
        prose, dates = families()
        clusters = cluster_by_similarity(prose + dates, threshold=0.0)
        assert len(clusters) == 1

    def test_empty(self):
        assert cluster_by_similarity([]) == []

    def test_partition_property(self):
        prose, dates = families()
        clusters = cluster_by_similarity(prose + dates, threshold=0.4)
        seen = sorted(i for c in clusters for i in c)
        assert seen == list(range(5))


class TestSimilarityGroupedLoading:
    DOC = """
    <db>
      <a><t>the quick brown fox jumps over the dog</t></a>
      <a><t>the quick brown fox naps under the tree</t></a>
      <b><t>the lazy dog sleeps through the quick day</t></b>
      <n><v>1999-01-02</v></n>
      <n><v>2003-07-15</v></n>
    </db>
    """

    def test_similar_containers_share_model(self):
        system = XQueCSystem.load(self.DOC, similarity_grouping=True,
                                  similarity_threshold=0.55)
        assert system.configuration is not None
        a_text = system.repository.container("/db/a/t/#text")
        b_text = system.repository.container("/db/b/t/#text")
        group = system.configuration.group_of("/db/a/t/#text")
        if group is not None and "/db/b/t/#text" in group:
            assert a_text.codec is b_text.codec

    def test_queries_unaffected(self):
        plain = XQueCSystem.load(self.DOC)
        grouped = XQueCSystem.load(self.DOC, similarity_grouping=True)
        query = '/db/a/t/text()'
        assert plain.query(query).to_xml() == \
            grouped.query(query).to_xml()

    def test_numeric_containers_untouched(self):
        system = XQueCSystem.load(self.DOC, similarity_grouping=True)
        dates = system.repository.container("/db/n/v/#text")
        assert dates.value_type == "string"  # dates are not canonical
        # they may be grouped, but only with string codecs
        assert dates.codec.name in ("alm",)

    def test_fewer_models_than_default(self):
        from repro.xmark.generator import generate_xmark
        text = generate_xmark(0.01, seed=6)
        plain = XQueCSystem.load(text)
        grouped = XQueCSystem.load(text, similarity_grouping=True,
                                   similarity_threshold=0.55)

        def model_count(system):
            return len({id(c.codec)
                        for c in system.repository.containers()})

        assert model_count(grouped) <= model_count(plain)

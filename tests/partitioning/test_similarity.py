"""Tests for the similarity matrix F."""

from collections import Counter

import numpy as np

from repro.partitioning.similarity import (
    char_cosine,
    pair_similarity,
    similarity_matrix,
    value_overlap,
)


class TestCharCosine:
    def test_identical(self):
        counts = Counter("hello world")
        assert abs(char_cosine(counts, counts) - 1.0) < 1e-12

    def test_disjoint_alphabets(self):
        assert char_cosine(Counter("aaa"), Counter("zzz")) == 0.0

    def test_empty(self):
        assert char_cosine(Counter(), Counter("a")) == 0.0


class TestValueOverlap:
    def test_identical_sets(self):
        assert value_overlap({"x", "y"}, {"x", "y"}) == 1.0

    def test_half_overlap(self):
        assert value_overlap({"x", "y"}, {"y", "z"}) == 1 / 3

    def test_empty(self):
        assert value_overlap(set(), {"x"}) == 0.0


class TestPairSimilarity:
    def test_range(self):
        s = pair_similarity(["abc", "abd"], ["xbc", "abc"])
        assert 0.0 <= s <= 1.0

    def test_similar_beats_dissimilar(self):
        prose_a = ["the quick brown fox jumps"]
        prose_b = ["the lazy dog sleeps deeply"]
        dates = ["1999-01-02", "2003-12-31"]
        assert pair_similarity(prose_a, prose_b) > \
            pair_similarity(prose_a, dates)


class TestSimilarityMatrix:
    def test_shape_and_diagonal(self):
        F = similarity_matrix([["a"], ["b"], ["c"]])
        assert F.shape == (3, 3)
        assert np.allclose(np.diag(F), 1.0)

    def test_symmetric(self):
        F = similarity_matrix([["abc"], ["abd"], ["xyz"]])
        assert np.allclose(F, F.T)

    def test_values_in_unit_interval(self):
        F = similarity_matrix([["hello"], ["world"], ["12345"]])
        assert (F >= 0.0).all() and (F <= 1.0 + 1e-12).all()

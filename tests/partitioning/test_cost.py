"""Tests for the §3.2 cost function."""

import pytest

from repro.partitioning.config import (
    CompressionConfiguration,
    ContainerGroup,
)
from repro.partitioning.cost import ContainerProfile, CostModel
from repro.partitioning.workload import Predicate, Workload

PROSE_A = ["the quick brown fox jumps over the lazy dog"] * 20
PROSE_B = ["a stitch in time saves nine every single day"] * 20
DATES = ["1999-12-31", "2000-01-01", "2003-06-15"] * 20


def profiles():
    return [
        ContainerProfile.from_values("/a", PROSE_A),
        ContainerProfile.from_values("/b", PROSE_B),
        ContainerProfile.from_values("/d", DATES),
    ]


class TestContainerProfile:
    def test_from_values(self):
        profile = ContainerProfile.from_values("/x", ["ab", "b"])
        assert profile.count == 2
        assert profile.total_chars == 3
        assert profile.char_counts["b"] == 2

    def test_entropy(self):
        assert ContainerProfile.from_values("/x", ["ab"]).entropy_bits() \
            == pytest.approx(1.0)
        assert ContainerProfile.from_values("/x", ["aa"]).entropy_bits() \
            == 0.0


class TestStorageCost:
    def test_paper_example_merging_dissimilar_raises_storage(self):
        """The §3 a/b-vs-c/d example: a shared source model over
        dissimilar containers costs more bits per letter."""
        ab = ContainerProfile.from_values("/ab", ["abab", "baba"] * 10)
        cd = ContainerProfile.from_values("/cd", ["cdcd", "dcdc"] * 10)
        model = CostModel([ab, cd], Workload())
        separate = CompressionConfiguration(groups=[
            ContainerGroup(("/ab",), "huffman"),
            ContainerGroup(("/cd",), "huffman")])
        merged = CompressionConfiguration(groups=[
            ContainerGroup(("/ab", "/cd"), "huffman")])
        assert model.storage_cost(merged) > model.storage_cost(separate)

    def test_merging_similar_does_not_raise_storage(self):
        a = ContainerProfile.from_values("/a", PROSE_A)
        b = ContainerProfile.from_values("/b", PROSE_A)
        model = CostModel([a, b], Workload())
        separate = CompressionConfiguration(groups=[
            ContainerGroup(("/a",), "alm"), ContainerGroup(("/b",), "alm")])
        merged = CompressionConfiguration(groups=[
            ContainerGroup(("/a", "/b"), "alm")])
        assert model.storage_cost(merged) == \
            pytest.approx(model.storage_cost(separate))

    def test_model_cost_one_model_per_group(self):
        model = CostModel(profiles(), Workload())
        merged = CompressionConfiguration(groups=[
            ContainerGroup(("/a", "/b", "/d"), "alm")])
        separate = CompressionConfiguration(groups=[
            ContainerGroup(("/a",), "alm"),
            ContainerGroup(("/b",), "alm"),
            ContainerGroup(("/d",), "alm")])
        assert model.model_cost(merged) < model.model_cost(separate)


class TestDecompressionCost:
    def test_supported_predicate_shared_model_is_free(self):
        workload = Workload([Predicate("ineq", "/a", "/b")])
        model = CostModel(profiles(), workload)
        config = CompressionConfiguration(groups=[
            ContainerGroup(("/a", "/b"), "alm"),
            ContainerGroup(("/d",), "bzip2")])
        assert model.decompression_cost(config) == 0.0

    def test_unsupported_predicate_costs_case_iii(self):
        # Huffman cannot do inequality in the compressed domain.
        workload = Workload([Predicate("ineq", "/a", "/b")])
        model = CostModel(profiles(), workload)
        config = CompressionConfiguration(groups=[
            ContainerGroup(("/a", "/b"), "huffman"),
            ContainerGroup(("/d",), "bzip2")])
        assert model.decompression_cost(config) > 0.0

    def test_different_source_models_cost_case_ii(self):
        # Same algorithm, different groups => decompression required.
        workload = Workload([Predicate("eq", "/a", "/b")])
        model = CostModel(profiles(), workload)
        config = CompressionConfiguration(groups=[
            ContainerGroup(("/a",), "huffman"),
            ContainerGroup(("/b",), "huffman"),
            ContainerGroup(("/d",), "bzip2")])
        assert model.decompression_cost(config) > 0.0

    def test_constant_predicate_charges_one_container(self):
        workload = Workload([Predicate("ineq", "/a")])
        model = CostModel(profiles(), workload)
        blob = CompressionConfiguration.singletons(
            ["/a", "/b", "/d"], "bzip2")
        alm_first = CompressionConfiguration(groups=[
            ContainerGroup(("/a",), "alm"),
            ContainerGroup(("/b",), "bzip2"),
            ContainerGroup(("/d",), "bzip2")])
        assert model.decompression_cost(alm_first) == 0.0
        assert model.decompression_cost(blob) > 0.0

    def test_wild_predicate_prefers_huffman(self):
        workload = Workload([Predicate("wild", "/a")])
        model = CostModel(profiles(), workload)
        huffman = CompressionConfiguration(groups=[
            ContainerGroup(("/a",), "huffman"),
            ContainerGroup(("/b",), "bzip2"),
            ContainerGroup(("/d",), "bzip2")])
        alm = CompressionConfiguration(groups=[
            ContainerGroup(("/a",), "alm"),
            ContainerGroup(("/b",), "bzip2"),
            ContainerGroup(("/d",), "bzip2")])
        assert model.decompression_cost(huffman) == 0.0
        assert model.decompression_cost(alm) > 0.0


class TestTotalCost:
    def test_breakdown_sums(self):
        workload = Workload([Predicate("eq", "/a", "/b")])
        model = CostModel(profiles(), workload)
        config = CompressionConfiguration.singletons(
            ["/a", "/b", "/d"], "huffman")
        parts = model.breakdown(config)
        assert parts["total"] == pytest.approx(
            parts["storage"] + parts["models"] + parts["decompression"])

    def test_weights_respected(self):
        workload = Workload([Predicate("ineq", "/a", "/b")])
        config = CompressionConfiguration.singletons(
            ["/a", "/b", "/d"], "huffman")
        light = CostModel(profiles(), workload,
                          decompression_weight=0.0).cost(config)
        heavy = CostModel(profiles(), workload,
                          decompression_weight=10.0).cost(config)
        assert heavy > light

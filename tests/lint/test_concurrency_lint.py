"""Tier C concurrency lint: each rule on synthetic trees, clean on ours."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.lint import lint_paths
from repro.lint.concurrency import lint_concurrency
from repro.lint.rules import RULES

REPRO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def write(tmp_path, name: str, code: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    return path


def rules_of(report):
    return [d.rule for d in report.diagnostics]


class TestLockOrderCycle:
    def test_planted_inversion_reported(self, tmp_path):
        write(tmp_path, "inverted.py", """\
            import threading


            class Inverted:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def forward(self):
                    with self._a:
                        with self._b:
                            pass

                def backward(self):
                    with self._b:
                        with self._a:
                            pass
            """)
        report = lint_concurrency([tmp_path])
        assert not report.ok
        assert "conc.lock-order-cycle" in rules_of(report)
        [cycle] = [d for d in report.diagnostics
                   if d.rule == "conc.lock-order-cycle"]
        assert "Inverted._a" in cycle.message
        assert "Inverted._b" in cycle.message

    def test_inversion_through_method_calls(self, tmp_path):
        # Neither method nests two `with` statements directly; the
        # inversion only exists across the call graph.
        write(tmp_path, "indirect.py", """\
            import threading


            class Inner:
                def __init__(self):
                    self._lock = threading.Lock()

                def poke(self):
                    with self._lock:
                        pass


            class Outer:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._inner = Inner()

                def down(self):
                    with self._lock:
                        self._inner.poke()

                def up(self):
                    with self._inner._lock:
                        self.touch()

                def touch(self):
                    with self._lock:
                        pass
            """)
        report = lint_concurrency([tmp_path])
        assert "conc.lock-order-cycle" in rules_of(report)

    def test_consistent_order_is_clean(self, tmp_path):
        write(tmp_path, "ordered.py", """\
            import threading


            class Ordered:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
            """)
        report = lint_concurrency([tmp_path])
        assert report.ok
        assert report.static_edges() == {("Ordered._a", "Ordered._b")}
        assert report.levels["Ordered._a"] == 1
        assert report.levels["Ordered._b"] == 0


class TestSelfDeadlock:
    def test_plain_lock_reacquired_reported(self, tmp_path):
        write(tmp_path, "again.py", """\
            import threading


            class Again:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """)
        report = lint_concurrency([tmp_path])
        assert "conc.self-deadlock" in rules_of(report)

    def test_rlock_reentrancy_allowed(self, tmp_path):
        write(tmp_path, "reentrant.py", """\
            import threading


            class Reentrant:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """)
        assert lint_concurrency([tmp_path]).ok


class TestAcquireRelease:
    def test_acquire_without_release_reported(self, tmp_path):
        write(tmp_path, "leak.py", """\
            import threading


            class Leak:
                def __init__(self):
                    self._lock = threading.Lock()

                def bad(self):
                    self._lock.acquire()
                    self._lock.release()
            """)
        report = lint_concurrency([tmp_path])
        assert "conc.acquire-no-release" in rules_of(report)

    def test_try_finally_release_is_clean(self, tmp_path):
        write(tmp_path, "held.py", """\
            import threading


            class Held:
                GUARDED_BY = {"state": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self.state = 0

                def good(self):
                    self._lock.acquire()
                    try:
                        self.state += 1
                    finally:
                        self._lock.release()
            """)
        assert lint_concurrency([tmp_path]).ok


class TestGuardedFields:
    def test_planted_unguarded_write_reported(self, tmp_path):
        write(tmp_path, "racy.py", """\
            import threading


            class Racy:
                GUARDED_BY = {"shared": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self.shared = []

                def bad(self):
                    self.shared.append(1)
            """)
        report = lint_concurrency([tmp_path])
        assert not report.ok
        assert rules_of(report) == ["conc.unguarded-field"]
        assert "mutated" in report.diagnostics[0].message

    def test_guarded_comment_annotation_form(self, tmp_path):
        write(tmp_path, "commented.py", """\
            import threading


            class Commented:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.shared = 0  # guarded-by: _lock

                def bad(self):
                    return self.shared
            """)
        report = lint_concurrency([tmp_path])
        assert rules_of(report) == ["conc.unguarded-field"]
        assert "read" in report.diagnostics[0].message

    def test_lockfree_read_waiver(self, tmp_path):
        write(tmp_path, "waived.py", """\
            import threading


            class Waived:
                GUARDED_BY = {"shared": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self.shared = {}

                def fast(self):
                    return self.shared.get("x")  # lockfree-read

                def slow(self):
                    with self._lock:
                        self.shared["x"] = 1
            """)
        assert lint_concurrency([tmp_path]).ok

    def test_lockfree_read_never_waives_mutation(self, tmp_path):
        write(tmp_path, "cheat.py", """\
            import threading


            class Cheat:
                GUARDED_BY = {"shared": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self.shared = {}

                def sneaky(self):
                    self.shared.update(x=1)  # lockfree-read
            """)
        report = lint_concurrency([tmp_path])
        assert rules_of(report) == ["conc.unguarded-field"]

    def test_unknown_guard_reported(self, tmp_path):
        write(tmp_path, "ghost.py", """\
            import threading


            class Ghost:
                GUARDED_BY = {"shared": "_no_such_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self.shared = 0
            """)
        report = lint_concurrency([tmp_path])
        assert "conc.unknown-guard" in rules_of(report)


class TestHolds:
    def test_holds_violation_reported(self, tmp_path):
        write(tmp_path, "helper.py", """\
            import threading


            class Helper:
                GUARDED_BY = {"shared": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self.shared = 0

                def _bump(self):  # holds: _lock
                    self.shared += 1

                def good(self):
                    with self._lock:
                        self._bump()

                def bad(self):
                    self._bump()
            """)
        report = lint_concurrency([tmp_path])
        assert rules_of(report) == ["conc.holds-violation"]

    def test_holds_does_not_fake_self_deadlock(self, tmp_path):
        # A `# holds:` helper is *entered with* the lock, it does not
        # acquire it — calling it under the lock must stay clean.
        write(tmp_path, "entered.py", """\
            import threading


            class Entered:
                def __init__(self):
                    self._lock = threading.Lock()

                def _inner(self):  # holds: _lock
                    pass

                def run(self):
                    with self._lock:
                        self._inner()
            """)
        assert lint_concurrency([tmp_path]).ok


class TestInventory:
    def test_module_and_attribute_identities(self, tmp_path):
        write(tmp_path, "inv.py", """\
            import threading

            GLOBAL_LOCK = threading.Lock()


            class Owner:
                def __init__(self):
                    self._lock = threading.RLock()
                    self._stop = threading.Event()
            """)
        report = lint_concurrency([tmp_path])
        identities = {p.identity: p.kind for p in report.primitives}
        assert identities == {
            "inv:GLOBAL_LOCK": "Lock",
            "Owner._lock": "RLock",
            "Owner._stop": "Event",
        }

    def test_every_diagnostic_rule_is_catalogued(self, tmp_path):
        write(tmp_path, "mixed.py", """\
            import threading


            class Mixed:
                GUARDED_BY = {"shared": "_a"}

                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self.shared = 0

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._b:
                        with self._a:
                            pass

                def three(self):
                    self.shared = 9
                    self._a.acquire()
                    self._a.release()
            """)
        report = lint_concurrency([tmp_path])
        assert not report.ok
        for diagnostic in report.diagnostics:
            assert diagnostic.rule in RULES
            assert diagnostic.rule.startswith("conc.")
        payload = report.to_dict()
        assert json.dumps(payload)  # JSON-ready
        assert payload["ok"] is False


class TestOnRealSources:
    def test_src_repro_lock_discipline_is_clean(self):
        report = lint_concurrency([REPRO_SRC])
        assert [d.format() for d in report.diagnostics] == []
        assert report.ok

    def test_src_repro_inventory_covers_known_locks(self):
        report = lint_concurrency([REPRO_SRC])
        identities = {p.identity for p in report.primitives}
        assert {"Session._activation_lock", "PlanCache._lock",
                "BlockCache._lock", "MetricsRegistry._lock",
                "WorkloadJournal._lock",
                "tracer:_PROFILING_LOCK"} <= identities

    def test_static_graph_has_no_cycles_and_session_on_top(self):
        report = lint_concurrency([REPRO_SRC])
        assert all(d.rule != "conc.lock-order-cycle"
                   for d in report.diagnostics)
        top = max(report.levels.values())
        assert report.levels["Session._activation_lock"] == top


class TestUntrackedPrimitiveTierB:
    def test_inventoried_positions_are_clean(self, tmp_path):
        write(tmp_path, "fine.py", """\
            import threading

            MODULE_LOCK = threading.Lock()


            class Fine:
                CLASS_LOCK = threading.Lock()

                def __init__(self):
                    self._lock = threading.Lock()
                    thread = threading.Thread(target=print)
                    self._thread = thread
            """)
        assert lint_paths([tmp_path]) == []

    def test_untracked_primitive_reported(self, tmp_path):
        write(tmp_path, "hidden.py", """\
            import threading


            def helper():
                lock = threading.Lock()
                return lock
            """)
        diagnostics = lint_paths([tmp_path])
        assert [d.rule for d in diagnostics] == \
            ["src.untracked-threading-primitive"]

    def test_from_import_alias_tracked(self, tmp_path):
        write(tmp_path, "aliased.py", """\
            from threading import Lock as L


            def helper():
                return [L() for _ in range(2)]
            """)
        diagnostics = lint_paths([tmp_path])
        assert [d.rule for d in diagnostics] == \
            ["src.untracked-threading-primitive"]


class TestCli:
    def test_exit_zero_and_json_on_clean_tree(self, tmp_path):
        import io

        from repro.cli import main
        write(tmp_path, "clean.py", """\
            import threading


            class Clean:
                def __init__(self):
                    self._lock = threading.Lock()
            """)
        out = io.StringIO()
        assert main(["lint-concurrency", str(tmp_path), "--json"],
                    out=out) == 0
        payload = json.loads(out.getvalue())
        assert payload["ok"] is True
        assert payload["primitives"][0]["identity"] == "Clean._lock"

    def test_exit_one_on_planted_inversion(self, tmp_path):
        import io

        from repro.cli import main
        write(tmp_path, "planted.py", """\
            import threading


            class Planted:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._b:
                        with self._a:
                            pass
            """)
        out = io.StringIO()
        assert main(["lint-concurrency", str(tmp_path)],
                    out=out) == 1
        assert "conc.lock-order-cycle" in out.getvalue()

    def test_exit_one_on_planted_unguarded_write(self, tmp_path):
        import io

        from repro.cli import main
        write(tmp_path, "write.py", """\
            import threading


            class Write:
                GUARDED_BY = {"shared": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self.shared = 0

                def bad(self):
                    self.shared = 1
            """)
        out = io.StringIO()
        assert main(["lint-concurrency", str(tmp_path)],
                    out=out) == 1
        assert "conc.unguarded-field" in out.getvalue()

    def test_repo_sources_pass_via_cli(self):
        import io

        from repro.cli import main
        out = io.StringIO()
        assert main(["lint-concurrency", str(REPRO_SRC)],
                    out=out) == 0
        assert "0 diagnostic(s)" in out.getvalue()

"""Tier B source lint: each rule on synthetic trees, clean on ours."""

from __future__ import annotations

from pathlib import Path

import textwrap

from repro.lint import lint_paths

REPRO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def write(tmp_path, name: str, code: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code), encoding="utf-8")
    return path


def rules_of(diagnostics):
    return [d.rule for d in diagnostics]


class TestOperatorInvariants:
    def test_missing_rows_reported(self, tmp_path):
        write(tmp_path, "ops.py", """\
            class Operator:
                def _rows(self):
                    raise NotImplementedError

            class Broken(Operator):
                def other(self):
                    return []
            """)
        diagnostics = lint_paths([tmp_path])
        assert rules_of(diagnostics) == ["src.operator-rows"]
        assert "Broken" in diagnostics[0].message

    def test_iter_override_reported(self, tmp_path):
        write(tmp_path, "ops.py", """\
            class Operator:
                def _rows(self):
                    raise NotImplementedError

            class Sneaky(Operator):
                def _batches(self, size):
                    return iter(())

                def __iter__(self):
                    return iter(())
            """)
        assert rules_of(lint_paths([tmp_path])) == \
            ["src.operator-iter-override"]

    def test_rows_only_operator_reported(self, tmp_path):
        """The deprecated row-pull protocol gets the Tier-B warning."""
        write(tmp_path, "ops.py", """\
            class Operator:
                def _rows(self):
                    raise NotImplementedError

            class Legacy(Operator):
                def _rows(self):
                    return iter(())
            """)
        diagnostics = lint_paths([tmp_path])
        assert rules_of(diagnostics) == ["src.operator-rows-no-batches"]
        assert diagnostics[0].severity == "warning"
        assert "Legacy" in diagnostics[0].message

    def test_conforming_operator_is_clean(self, tmp_path):
        write(tmp_path, "ops.py", """\
            class Operator:
                def _rows(self):
                    raise NotImplementedError

            class Fine(Operator):
                def _rows(self):
                    return iter(())

                def _batches(self, size):
                    return self._compat_batches(size)

            class BatchOnly(Operator):
                def _batches(self, size):
                    return iter(())
            """)
        assert lint_paths([tmp_path]) == []


class TestCodecProperties:
    def test_registered_codec_without_properties_reported(self, tmp_path):
        write(tmp_path, "codecs.py", """\
            class Codec:
                properties = None

            class Bare(Codec):
                name = "bare"
            """)
        write(tmp_path, "registry.py", """\
            from codecs import Bare

            _REGISTRY = {Bare.name: Bare}
            """)
        diagnostics = lint_paths([tmp_path])
        assert rules_of(diagnostics) == ["src.codec-properties"]
        assert "Bare" in diagnostics[0].message

    def test_properties_via_ancestor_accepted(self, tmp_path):
        """Declaring the capability tuple on an intermediate base class
        (below the Codec root) satisfies the rule."""
        write(tmp_path, "codecs.py", """\
            class Codec:
                pass

            class StringCodec(Codec):
                properties = "CompressionProperties(eq=True)"

            class Derived(StringCodec):
                name = "derived"
            """)
        write(tmp_path, "registry.py", """\
            _REGISTRY = {"derived": Derived}
            """)
        assert lint_paths([tmp_path]) == []

    def test_unregistered_class_not_required(self, tmp_path):
        write(tmp_path, "codecs.py", """\
            class Codec:
                pass

            class Helper(Codec):
                name = "helper"
            """)
        assert lint_paths([tmp_path]) == []


class TestRawDecode:
    def test_decode_in_operator_body_reported(self, tmp_path):
        write(tmp_path, "query/physical.py", """\
            class Operator:
                def _rows(self):
                    raise NotImplementedError

            class Leaky(Operator):
                def _batches(self, size):
                    yield {"v": self._codec.decode(b"x")}
            """)
        diagnostics = lint_paths([tmp_path])
        assert rules_of(diagnostics) == ["src.raw-decode"]
        assert "Leaky" in diagnostics[0].message

    def test_sanctioned_sites_accepted(self, tmp_path):
        write(tmp_path, "query/physical.py", """\
            class Operator:
                def _rows(self):
                    raise NotImplementedError

            class Decompress(Operator):
                def _batches(self, size):
                    yield {"v": self._codec.decode(b"x")}

            class TextContent(Operator):
                def _batches(self, size):
                    yield {"v": self._codec.decode(b"x")}
            """)
        assert lint_paths([tmp_path]) == []

    def test_decode_outside_physical_py_not_flagged(self, tmp_path):
        write(tmp_path, "storage.py", """\
            class Operator:
                def _rows(self):
                    raise NotImplementedError

            class Container(Operator):
                def _batches(self, size):
                    yield self._codec.decode(b"x")
            """)
        assert lint_paths([tmp_path]) == []


class TestPythonFootguns:
    def test_bare_except_reported(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f():
                try:
                    return 1
                except:
                    return 2
            """)
        diagnostics = lint_paths([tmp_path])
        assert rules_of(diagnostics) == ["src.bare-except"]
        assert diagnostics[0].line == 4

    def test_typed_except_accepted(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f():
                try:
                    return 1
                except ValueError:
                    return 2
            """)
        assert lint_paths([tmp_path]) == []

    def test_mutable_default_reported(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(items=[], *, table={}, factory=list()):
                return items, table, factory
            """)
        diagnostics = lint_paths([tmp_path])
        assert rules_of(diagnostics) == ["src.mutable-default"] * 3

    def test_none_default_accepted(self, tmp_path):
        write(tmp_path, "mod.py", """\
            def f(items=None, name="x", count=0):
                return items, name, count
            """)
        assert lint_paths([tmp_path]) == []


class TestOnRealSources:
    def test_src_repro_is_clean(self):
        """The issue's acceptance criterion: the lint runs with zero
        diagnostics on src/repro, no exclusions."""
        diagnostics = lint_paths([REPRO_SRC])
        assert diagnostics == []

    def test_diagnostics_are_sorted_and_serializable(self, tmp_path):
        write(tmp_path, "b.py", "def f(x=[]):\n    return x\n")
        write(tmp_path, "a.py", "def g(y={}):\n    return y\n")
        diagnostics = lint_paths([tmp_path])
        files = [Path(d.file).name for d in diagnostics]
        assert files == ["a.py", "b.py"]
        for diagnostic in diagnostics:
            doc = diagnostic.to_dict()
            assert doc["rule"] == "src.mutable-default"
            assert isinstance(doc["line"], int)
            assert diagnostic.format().startswith(diagnostic.file)

"""The engine's pre-execution verification gate.

``QueryEngine.execute`` compiles the optimizer's decisions into plan
sketches (:mod:`repro.lint.compile`) and verifies them before any row
is produced: errors raise :class:`~repro.errors.PlanVerificationError`,
warnings ride along in the run's telemetry.  Engine-compiled sketches
must be error-free by construction — the compiler falls back to
Decompress-then-Select whenever a codec lacks the predicate's
capability.
"""

from __future__ import annotations

import pytest

from repro.errors import PlanVerificationError
from repro.lint.compile import compile_plan_sketches, verify_query
from repro.lint.diagnostics import PlanDiagnostic
from repro.obs.telemetry import Telemetry
from repro.partitioning.config import (
    CompressionConfiguration,
    ContainerGroup,
)
from repro.query.engine import QueryEngine
from repro.query.options import ExecutionOptions
from repro.query.parser import parse_query
from repro.query.physical import XMLSerialize
from repro.storage.loader import load_document

TITLE = "/lib/b/t/#text"
URI = "/lib/b/u/#text"


def build_repo(title_codec: str = "huffman"):
    xml = "<lib>" + "".join(
        f"<b><t>title {i:02d}</t><u>uri{i:02d}</u></b>"
        for i in range(12)) + "</lib>"
    configuration = CompressionConfiguration(groups=[
        ContainerGroup((TITLE,), title_codec),
        ContainerGroup((URI,), "alm"),
    ])
    return load_document(xml, configuration=configuration)


EXAMPLE_QUERIES = (
    "/lib/b/t",
    'for $b in /lib/b where $b/t/text() = "title 03" return $b/u/text()',
    'for $b in /lib/b where $b/u >= "uri04" and $b/u <= "uri06" '
    "return $b/t/text()",
    "for $a in /lib/b, $b in /lib/b where $a/t = $b/t "
    "return $a/u/text()",
)


class TestVerifyQuery:
    @pytest.mark.parametrize("query", EXAMPLE_QUERIES)
    def test_example_queries_have_no_errors(self, query):
        repo = build_repo()
        diagnostics = verify_query(parse_query(query), repo)
        assert [d for d in diagnostics if d.severity == "error"] == []

    def test_eq_range_on_huffman_warns_about_pivots(self):
        """The bottom-up interval access on an order-agnostic codec is
        legal but decompresses O(log n) pivots — a warning."""
        repo = build_repo("huffman")
        diagnostics = verify_query(parse_query(
            'for $b in /lib/b where $b/t/text() = "title 03" '
            "return $b/t/text()"), repo)
        assert [d.rule for d in diagnostics] == \
            ["plan.interval-decompressing"]

    def test_same_range_on_alm_is_clean(self):
        repo = build_repo("alm")
        diagnostics = verify_query(parse_query(
            'for $b in /lib/b where $b/t/text() = "title 03" '
            "return $b/t/text()"), repo)
        assert diagnostics == []

    def test_sketches_end_in_xml_serialize(self):
        repo = build_repo()
        sketches = compile_plan_sketches(parse_query(
            'for $b in /lib/b where $b/u >= "uri04" '
            "return $b/u/text()"), repo)
        assert sketches
        assert all(isinstance(s, XMLSerialize) for s in sketches)

    def test_ineq_sketch_keeps_alm_compressed(self):
        """An order-preserving codec lets the re-check Select run in
        the compressed domain; the sketch carries the predicate kind."""
        repo = build_repo("alm")
        diagnostics = verify_query(parse_query(
            'for $b in /lib/b where $b/t/text() > "title 05" '
            "return $b/t/text()"), repo)
        assert diagnostics == []


class TestEngineGate:
    def test_execute_verifies_by_default(self):
        repo = build_repo()
        engine = QueryEngine(repo)
        assert engine.verify_plans is True
        result = engine.execute(
            'for $b in /lib/b where $b/t/text() = "title 03" '
            "return $b/u/text()")
        assert result.items == ["uri03"]

    def test_errors_raise_before_execution(self, monkeypatch):
        repo = build_repo()
        engine = QueryEngine(repo)
        bad = PlanDiagnostic.make(
            "plan.ineq-order-agnostic", "Select",
            "injected error for the gate test")
        monkeypatch.setattr(QueryEngine, "verify",
                            lambda self, query: [bad])
        with pytest.raises(PlanVerificationError) as exc_info:
            engine.execute("/lib/b/t")
        assert exc_info.value.diagnostics == [bad]
        assert "plan.ineq-order-agnostic" in str(exc_info.value)

    def test_warnings_flow_into_telemetry(self):
        repo = build_repo("huffman")
        engine = QueryEngine(repo)
        telemetry = Telemetry(enabled=True)
        engine.execute(
            'for $b in /lib/b where $b/t/text() = "title 03" '
            "return $b/t/text()",
            ExecutionOptions(telemetry=telemetry))
        rules = [d.rule for d in telemetry.diagnostics]
        assert rules == ["plan.interval-decompressing"]
        assert telemetry.metrics.counters()["lint.warning"] == 1
        assert telemetry.to_dict()["diagnostics"][0]["rule"] == \
            "plan.interval-decompressing"

    def test_gate_can_be_disabled(self, monkeypatch):
        repo = build_repo()
        engine = QueryEngine(repo, verify_plans=False)

        def boom(self, query):  # pragma: no cover - must not run
            raise AssertionError("verify called with gate disabled")

        monkeypatch.setattr(QueryEngine, "verify", boom)
        result = engine.execute("/lib/b/t")
        assert len(result) == 12

    def test_verification_is_cached_per_parsed_query(self):
        repo = build_repo()
        engine = QueryEngine(repo)
        ast = parse_query(
            'for $b in /lib/b where $b/t/text() = "title 03" return $b')
        first = engine.verify(ast)
        assert engine.verify(ast) is first

    def test_explain_analyze_renders_diagnostics(self):
        repo = build_repo("huffman")
        engine = QueryEngine(repo)
        text = engine.explain_analyze(
            'for $b in /lib/b where $b/t/text() = "title 03" '
            "return $b/t/text()")
        assert "-- plan diagnostics (static verifier) --" in text
        assert "plan.interval-decompressing" in text

    def test_clean_run_renders_no_diagnostics_section(self):
        repo = build_repo("alm")
        engine = QueryEngine(repo)
        text = engine.explain_analyze("/lib/b/t")
        assert "plan diagnostics" not in text

"""Tier A plan verifier over hand-built physical plans.

The acceptance cases of the issue live here: an ``ineq`` predicate
pushed to a Huffman-compressed container and a ``MergeJoin`` over
unsorted inputs must be rejected with rule-tagged diagnostics, while
plans respecting the paper's invariants verify clean.
"""

from __future__ import annotations

import pytest

from repro.errors import PlanVerificationError
from repro.lint import verify_plan
from repro.lint.rules import RULES
from repro.partitioning.config import (
    CompressionConfiguration,
    ContainerGroup,
)
from repro.query.physical import (
    ContAccess,
    ContScan,
    Decompress,
    HashJoin,
    MergeJoin,
    Select,
    Sort,
    StructureSummaryAccess,
    TextContent,
    XMLSerialize,
)
from repro.query.context import EvaluationStats
from repro.storage.loader import load_document

TITLE = "/lib/b/t/#text"
URI = "/lib/b/u/#text"
NOTE = "/lib/b/w/#text"


@pytest.fixture(scope="module")
def repo():
    """A repository with one container per §3.2 capability profile:
    huffman (order-agnostic), alm (order-preserving, no wild), and a
    bzip2 blob (no record access at all)."""
    xml = "<lib>" + "".join(
        f"<b><t>title {i:02d}</t><u>uri{i:02d}</u>"
        f"<w>note text {i:02d}</w></b>" for i in range(12)) + "</lib>"
    configuration = CompressionConfiguration(groups=[
        ContainerGroup((TITLE,), "huffman"),
        ContainerGroup((URI,), "alm"),
        ContainerGroup((NOTE,), "bzip2"),
    ])
    return load_document(xml, configuration=configuration)


def rules_of(diagnostics):
    return [d.rule for d in diagnostics]


def errors_of(diagnostics):
    return [d for d in diagnostics if d.severity == "error"]


class TestCapabilityRules:
    def test_ineq_on_huffman_rejected(self, repo):
        """The issue's first acceptance plan: an inequality pushed into
        the compressed domain of an order-agnostic codec."""
        scan = ContScan(repo, TITLE, "node", "title")
        plan = Select(scan, None, column="title",
                      predicate_kind="ineq")
        diagnostics = verify_plan(plan)
        assert rules_of(errors_of(diagnostics)) == \
            ["plan.ineq-order-agnostic"]
        assert "huffman" in diagnostics[0].message

    def test_eq_on_huffman_accepted(self, repo):
        scan = ContScan(repo, TITLE, "node", "title")
        plan = Select(scan, None, column="title", predicate_kind="eq")
        assert verify_plan(plan) == []

    def test_wild_on_alm_rejected(self, repo):
        scan = ContScan(repo, URI, "node", "uri")
        plan = Select(scan, None, column="uri", predicate_kind="wild")
        assert rules_of(verify_plan(plan)) == ["plan.wild-unsupported"]

    def test_ineq_on_alm_accepted(self, repo):
        scan = ContScan(repo, URI, "node", "uri")
        plan = Select(scan, None, column="uri", predicate_kind="ineq")
        assert verify_plan(plan) == []

    def test_predicate_on_decompressed_column_accepted(self, repo):
        """After an explicit Decompress any predicate kind is fine."""
        scan = ContScan(repo, TITLE, "node", "title")
        plan = Select(Decompress(scan, ["title"], EvaluationStats()),
                      None, column="title", predicate_kind="ineq")
        assert verify_plan(plan) == []

    def test_unknown_predicate_kind_is_invalid_metadata(self, repo):
        scan = ContScan(repo, TITLE, "node", "title")
        plan = Select(scan, None, column="title",
                      predicate_kind="fuzzy")
        assert rules_of(verify_plan(plan)) == ["plan.invalid-metadata"]


class TestMergeJoin:
    def test_unsorted_input_rejected(self, repo):
        """The issue's second acceptance plan: merging on a column the
        input is not value-ordered on (document order != value order
        after navigation)."""
        titles = TextContent(
            StructureSummaryAccess(repo, [("child", "b")], "b"),
            repo, "b", "title", TITLE, EvaluationStats())
        scan = ContScan(repo, TITLE, "node", "other")
        plan = MergeJoin(titles, scan, lambda r: r["title"],
                         lambda r: r["other"],
                         left_column="title", right_column="other")
        rules = rules_of(errors_of(verify_plan(plan)))
        assert rules == ["plan.merge-join-unordered"]

    def test_sort_without_declared_keys_rejected(self, repo):
        scan = ContScan(repo, TITLE, "node", "title")
        shuffled = Sort(scan, key=lambda r: 0)  # order undeclared
        plan = MergeJoin(shuffled, ContScan(repo, TITLE, "n2", "t2"),
                         lambda r: r["title"], lambda r: r["t2"],
                         left_column="title", right_column="t2")
        assert "plan.merge-join-unordered" in \
            rules_of(verify_plan(plan))

    def test_value_ordered_scans_accepted(self, repo):
        """Two scans of one container are value-ordered and share a
        source model: the paper's compressed merge join."""
        left = ContScan(repo, TITLE, "ln", "lv")
        right = ContScan(repo, TITLE, "rn", "rv")
        plan = MergeJoin(left, right, lambda r: r["lv"],
                         lambda r: r["rv"],
                         left_column="lv", right_column="rv")
        assert verify_plan(plan) == []

    def test_declared_sort_establishes_order(self, repo):
        titles = TextContent(
            StructureSummaryAccess(repo, [("child", "b")], "b"),
            repo, "b", "title", TITLE, EvaluationStats())
        sorted_titles = Sort(titles, key=lambda r: r["title"],
                             columns=("title",))
        plan = MergeJoin(sorted_titles, ContScan(repo, TITLE, "n", "v"),
                         lambda r: r["title"], lambda r: r["v"],
                         left_column="title", right_column="v")
        assert errors_of(verify_plan(plan)) == []

    def test_undeclared_keys_downgrade_to_info(self, repo):
        """Plans predating the metadata (e.g. Figure 5's) are not
        rejected — the verifier just flags them unverifiable."""
        plan = MergeJoin(ContScan(repo, TITLE, "a", "b"),
                         ContScan(repo, URI, "c", "d"),
                         lambda r: r["b"], lambda r: r["d"])
        diagnostics = verify_plan(plan)
        assert rules_of(diagnostics) == ["plan.merge-join-unverifiable"]
        assert diagnostics[0].severity == "info"


class TestCompressedDomains:
    def test_cross_domain_merge_rejected(self, repo):
        """huffman-compressed titles and alm-compressed uris do not
        share a source model; their bit strings must not meet."""
        plan = MergeJoin(ContScan(repo, TITLE, "a", "title"),
                         ContScan(repo, URI, "c", "uri"),
                         lambda r: r["title"], lambda r: r["uri"],
                         left_column="title", right_column="uri")
        assert "plan.cross-domain-compare" in \
            rules_of(verify_plan(plan))

    def test_cross_domain_hash_join_rejected(self, repo):
        plan = HashJoin(ContScan(repo, TITLE, "a", "title"),
                        ContScan(repo, URI, "c", "uri"),
                        lambda r: r["title"], lambda r: r["uri"],
                        left_column="title", right_column="uri")
        assert rules_of(verify_plan(plan)) == \
            ["plan.cross-domain-compare"]

    def test_same_model_hash_join_accepted(self, repo):
        plan = HashJoin(ContScan(repo, TITLE, "a", "lv"),
                        ContScan(repo, TITLE, "c", "rv"),
                        lambda r: r["lv"], lambda r: r["rv"],
                        left_column="lv", right_column="rv")
        assert verify_plan(plan) == []


class TestDecompressDiscipline:
    def test_missing_decompress_rejected(self, repo):
        scan = ContScan(repo, TITLE, "node", "title")
        plan = XMLSerialize(scan, ("title",))
        assert rules_of(verify_plan(plan)) == \
            ["plan.missing-decompress"]

    def test_decompress_then_serialize_accepted(self, repo):
        scan = ContScan(repo, TITLE, "node", "title")
        plan = XMLSerialize(
            Decompress(scan, ["title"], EvaluationStats()), ("title",))
        assert verify_plan(plan) == []

    def test_duplicate_decompress_warned(self, repo):
        scan = ContScan(repo, TITLE, "node", "title")
        stats = EvaluationStats()
        plan = Decompress(Decompress(scan, ["title"], stats),
                          ["title"], stats)
        diagnostics = verify_plan(plan)
        assert rules_of(diagnostics) == ["plan.duplicate-decompress"]
        assert diagnostics[0].severity == "warning"

    def test_decompress_of_node_column_warned(self, repo):
        scan = ContScan(repo, TITLE, "node", "title")
        plan = Decompress(scan, ["node"], EvaluationStats())
        assert rules_of(verify_plan(plan)) == \
            ["plan.duplicate-decompress"]


class TestSchemaChecks:
    def test_unknown_column_rejected(self, repo):
        scan = ContScan(repo, TITLE, "node", "title")
        plan = Select(scan, None, column="no_such_column",
                      predicate_kind="eq")
        diagnostics = verify_plan(plan)
        assert rules_of(diagnostics) == ["plan.unknown-column"]
        assert "no_such_column" in diagnostics[0].message

    def test_open_schema_suppresses_unknown_column(self, repo):
        """A plain-list input is untyped: no false positives."""
        rows = [{"anything": 1}]
        plan = Select(rows, None, column="anything",
                      predicate_kind="eq")
        assert verify_plan(plan) == []

    def test_operator_path_locates_the_offender(self, repo):
        scan = ContScan(repo, TITLE, "node", "title")
        inner = Select(scan, None, column="missing",
                       predicate_kind="eq")
        plan = XMLSerialize(
            Decompress(inner, ["title"], EvaluationStats()),
            ("title",))
        diagnostics = verify_plan(plan)
        assert diagnostics[0].operator_path == \
            "XMLSerialize/source=Decompress/source=Select"


class TestIntervalAccess:
    def test_blob_interval_search_warned(self, repo):
        plan = ContAccess(repo, NOTE, "node", "note", "a", "z")
        diagnostics = verify_plan(plan)
        assert rules_of(diagnostics) == \
            ["plan.interval-not-binary-searchable"]
        assert diagnostics[0].severity == "warning"

    def test_bounded_access_on_huffman_warned(self, repo):
        plan = ContAccess(repo, TITLE, "node", "title",
                          "title 03", "title 07")
        assert rules_of(verify_plan(plan)) == \
            ["plan.interval-decompressing"]

    def test_bounded_access_on_alm_clean(self, repo):
        plan = ContAccess(repo, URI, "node", "uri", "uri03", "uri07")
        assert verify_plan(plan) == []

    def test_unbounded_access_on_huffman_clean(self, repo):
        """No bounds, no pivot probing: a full scan is fine."""
        plan = ContAccess(repo, TITLE, "node", "title")
        assert verify_plan(plan) == []


class TestErrorType:
    def test_plan_verification_error_lists_errors(self, repo):
        scan = ContScan(repo, TITLE, "node", "title")
        plan = Select(scan, None, column="title",
                      predicate_kind="ineq")
        diagnostics = verify_plan(plan)
        error = PlanVerificationError(diagnostics)
        assert error.diagnostics == diagnostics
        assert "plan.ineq-order-agnostic" in str(error)

    def test_every_diagnostic_rule_is_cataloged(self, repo):
        scan = ContScan(repo, TITLE, "node", "title")
        plan = XMLSerialize(
            Select(scan, None, column="title",
                   predicate_kind="ineq"), ("title",))
        for diagnostic in verify_plan(plan):
            assert diagnostic.rule in RULES
            assert diagnostic.severity == RULES[diagnostic.rule].severity

"""End-to-end CLI tests (compress -> stats/query/decompress)."""

import io

import pytest

from repro.cli import main
from repro.xmlio.dom import parse
from repro.xmlio.writer import serialize

DOC = """
<library>
  <book isbn="1"><title>Dune</title><price>9.99</price></book>
  <book isbn="2"><title>Foundation</title><price>7.5</price></book>
</library>
"""


def run(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def repository_file(tmp_path):
    source = tmp_path / "lib.xml"
    source.write_text(DOC, encoding="utf-8")
    target = tmp_path / "lib.xqc"
    code, output = run("compress", str(source), str(target))
    assert code == 0 and "CF" in output
    return target


class TestCompress:
    def test_reports_sizes(self, tmp_path):
        source = tmp_path / "d.xml"
        source.write_text(DOC, encoding="utf-8")
        code, output = run("compress", str(source),
                           str(tmp_path / "d.xqc"))
        assert code == 0
        assert "compressed" in output and "->" in output

    def test_with_workload(self, tmp_path):
        source = tmp_path / "d.xml"
        source.write_text(DOC, encoding="utf-8")
        workload = tmp_path / "queries.txt"
        workload.write_text(
            'for $b in /library/book where $b/title/text() < "M" '
            "return $b/title/text()\n", encoding="utf-8")
        code, output = run("compress", str(source),
                           str(tmp_path / "d.xqc"),
                           "--workload", str(workload))
        assert code == 0
        assert "workload: 1 queries" in output


class TestQuery:
    def test_query_result(self, repository_file):
        code, output = run("query", str(repository_file),
                           "/library/book/title/text()")
        assert code == 0
        assert output.strip().splitlines() == ["Dune", "Foundation"]

    def test_query_with_stats(self, repository_file):
        code, output = run(
            "query", str(repository_file),
            'for $b in /library/book where $b/price/text() < 8 '
            "return $b/@isbn", "--stats")
        assert code == 0
        assert "2" in output
        assert "# decompressions" in output

    def test_query_batch_size_flag(self, repository_file):
        query = ('for $b in /library/book where $b/price/text() < 8 '
                 "return $b/title/text()")
        outputs = set()
        for size in ("1", "2", "1024"):
            code, output = run("query", str(repository_file), query,
                               "--batch-size", size)
            assert code == 0
            outputs.add(output)
        assert len(outputs) == 1  # identical across batch widths
        assert "Foundation" in outputs.pop()

    def test_query_rejects_bad_batch_size(self, repository_file):
        with pytest.raises(ValueError):
            run("query", str(repository_file),
                "/library/book/title/text()", "--batch-size", "0")


class TestAnalyze:
    def test_query_analyze_flag(self, repository_file):
        code, output = run(
            "query", str(repository_file),
            'for $b in /library/book where $b/title/text() = "Dune" '
            "return $b/@isbn", "--analyze")
        assert code == 0
        assert "# EXPLAIN ANALYZE" in output
        assert "[actual container_accesses=" in output
        assert "# -- counters (== QueryResult.stats) --" in output
        assert output.strip().endswith("1")  # the query result itself


class TestTrace:
    def test_emits_parsable_telemetry(self, repository_file):
        import json
        code, output = run("trace", str(repository_file),
                           "/library/book/title/text()")
        assert code == 0
        doc = json.loads(output)
        assert doc["enabled"] is True
        assert doc["metrics"]["counters"]["summary_accesses"] >= 1
        assert doc["trace"]["spans"][0]["name"] == "Query"

    def test_output_file(self, repository_file, tmp_path):
        import json
        target = tmp_path / "telemetry.json"
        code, output = run("trace", str(repository_file),
                           "/library/book/title/text()",
                           "--output", str(target))
        assert code == 0 and "wrote telemetry" in output
        doc = json.loads(target.read_text(encoding="utf-8"))
        assert doc["metrics"]["counters"]


class TestStats:
    def test_breakdown(self, repository_file):
        code, output = run("stats", str(repository_file))
        assert code == 0
        for label in ("container data", "structure summary",
                      "compression factor"):
            assert label in output

    def test_container_table_names_codecs(self, repository_file):
        code, output = run("stats", str(repository_file))
        assert code == 0
        assert "-- containers --" in output
        title_row = next(line for line in output.splitlines()
                         if "/library/book/title/#text" in line)
        assert "alm" in title_row  # codec name in the row
        isbn_row = next(line for line in output.splitlines()
                        if "/library/book/@isbn" in line)
        assert "integer" in isbn_row

    def test_codec_totals_from_registry(self, repository_file):
        code, output = run("stats", str(repository_file))
        assert code == 0
        assert "-- codec totals (from registry) --" in output
        assert "decodes" in output and "B compressed" in output


class TestDecompress:
    def test_roundtrip(self, repository_file, tmp_path):
        target = tmp_path / "roundtrip.xml"
        code, _ = run("decompress", str(repository_file), str(target))
        assert code == 0
        rebuilt = target.read_text(encoding="utf-8")
        assert serialize(parse(rebuilt)) == serialize(parse(DOC))

    def test_to_stdout(self, repository_file):
        code, output = run("decompress", str(repository_file))
        assert code == 0
        assert "<title>Dune</title>" in output


class TestXmlgen:
    def test_to_file(self, tmp_path):
        target = tmp_path / "auction.xml"
        code, output = run("xmlgen", "--factor", "0.002",
                           "--output", str(target))
        assert code == 0 and "wrote" in output
        assert parse(target.read_text(
            encoding="utf-8")).root.name == "site"

    def test_to_stdout(self):
        code, output = run("xmlgen", "--factor", "0.002")
        assert code == 0
        assert output.startswith("<site>")


class TestExplain:
    def test_query_explain_flag(self, repository_file):
        code, output = run(
            "query", str(repository_file),
            'for $b in /library/book where $b/title/text() = "Dune" '
            "return $b/@isbn", "--explain")
        assert code == 0
        assert "# plan:" in output
        assert "ContAccess" in output
        assert output.strip().endswith("1")


class TestErrors:
    def test_missing_input_file(self, tmp_path):
        import io
        err = io.StringIO()
        code = main(["compress", str(tmp_path / "ghost.xml"),
                     str(tmp_path / "out.xqc")], out=io.StringIO(),
                    err=err)
        assert code == 1
        assert "no such file" in err.getvalue()

    def test_malformed_xml(self, tmp_path):
        import io
        bad = tmp_path / "bad.xml"
        bad.write_text("<a><b></a>", encoding="utf-8")
        err = io.StringIO()
        code = main(["compress", str(bad), str(tmp_path / "o.xqc")],
                    out=io.StringIO(), err=err)
        assert code == 1
        assert "error:" in err.getvalue()

    def test_bad_query(self, repository_file):
        import io
        err = io.StringIO()
        code = main(["query", str(repository_file), "for $x return"],
                    out=io.StringIO(), err=err)
        assert code == 1

    def test_corrupt_repository(self, tmp_path):
        import io
        junk = tmp_path / "junk.xqc"
        junk.write_bytes(b"\x00" * 8192)
        err = io.StringIO()
        code = main(["stats", str(junk)], out=io.StringIO(), err=err)
        assert code == 1


class TestLintPlan:
    def test_clean_query(self, repository_file):
        code, output = run("lint-plan", str(repository_file),
                           'for $b in /library/book where '
                           '$b/title/text() = "Dune" '
                           "return $b/title/text()")
        assert code == 0
        assert "0 error(s)" in output

    def test_json_output(self, repository_file):
        import json
        code, output = run("lint-plan", "--json",
                           str(repository_file), "/library/book/title")
        assert code == 0
        document = json.loads(output)
        assert document["query"] == "/library/book/title"
        assert document["diagnostics"] == []

    def test_warning_does_not_fail(self, tmp_path):
        """Warnings print but exit 0; only errors gate the exit code."""
        source = tmp_path / "d.xml"
        source.write_text(DOC, encoding="utf-8")
        workload = tmp_path / "queries.txt"
        # A wildcard-heavy workload pushes the search toward huffman,
        # making the interval probe decompress pivots.
        workload.write_text(
            'for $b in /library/book where starts-with('
            '$b/title/text(), "Du") return $b\n' * 3, encoding="utf-8")
        target = tmp_path / "d.xqc"
        code, _ = run("compress", str(source), str(target),
                      "--workload", str(workload))
        assert code == 0
        code, output = run("lint-plan", str(target),
                           'for $b in /library/book where '
                           '$b/title/text() >= "A" return $b')
        assert code == 0
        assert "0 error(s)" in output.splitlines()[-1]


class TestLintSrc:
    def test_clean_on_installed_package(self):
        code, output = run("lint-src")
        assert code == 0
        assert "0 diagnostic(s)" in output

    def test_reports_violations(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    try:\n        return x\n"
                       "    except:\n        return None\n",
                       encoding="utf-8")
        code, output = run("lint-src", str(tmp_path))
        assert code == 1
        assert "src.mutable-default" in output
        assert "src.bare-except" in output

    def test_json_output(self, tmp_path):
        import json
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n", encoding="utf-8")
        code, output = run("lint-src", "--json", str(tmp_path))
        assert code == 1
        document = json.loads(output)
        assert [d["rule"] for d in document["diagnostics"]] == \
            ["src.mutable-default"]


class TestWorkloadRecording:
    QUERY = ('for $b in /library/book where $b/title/text() = "Dune" '
             "return $b/@isbn")

    def test_record_writes_default_journal(self, repository_file):
        code, _ = run("query", str(repository_file), self.QUERY,
                      "--record")
        assert code == 0
        journal = repository_file.with_name(
            repository_file.name + ".workload.jsonl")
        assert journal.exists()
        assert journal.read_text().count("\n") == 1

    def test_record_custom_journal(self, repository_file, tmp_path):
        journal = tmp_path / "custom.jsonl"
        code, _ = run("query", str(repository_file), self.QUERY,
                      "--record", "--journal", str(journal))
        assert code == 0
        assert journal.exists()

    def test_no_record_no_journal(self, repository_file):
        code, _ = run("query", str(repository_file), self.QUERY)
        assert code == 0
        journal = repository_file.with_name(
            repository_file.name + ".workload.jsonl")
        assert not journal.exists()

    def test_analyze_includes_drift_section(self, repository_file):
        code, output = run("query", str(repository_file), self.QUERY,
                           "--analyze", "--record")
        assert code == 0
        assert "# -- workload drift (observatory) --" in output
        assert "# journal records: 1" in output


class TestWorkloadReport:
    QUERY = ('for $b in /library/book where $b/title/text() = "Dune" '
             "return $b/@isbn")

    def _record(self, repository_file, times=2):
        for _ in range(times):
            code, _ = run("query", str(repository_file), self.QUERY,
                          "--record")
            assert code == 0

    def test_report_names_container(self, repository_file):
        self._record(repository_file)
        code, output = run("workload", "report",
                           str(repository_file))
        assert code == 0
        assert "Workload observatory" in output
        assert "/library/book/title/#text" in output

    def test_report_json(self, repository_file):
        import json
        self._record(repository_file)
        code, output = run("workload", "report",
                           str(repository_file), "--json")
        assert code == 0
        document = json.loads(output)
        assert document["record_count"] == 2
        assert "/library/book/title/#text" in \
            document["container_activity"]

    def test_report_since_filters(self, repository_file):
        self._record(repository_file)
        code, output = run("workload", "report",
                           str(repository_file), "--json",
                           "--since", "9999-01-01")
        assert code == 0
        import json
        assert json.loads(output)["record_count"] == 0

    def test_report_empty_journal(self, repository_file):
        code, output = run("workload", "report",
                           str(repository_file))
        assert code == 0
        assert "journal is empty" in output

    def test_report_top_k(self, repository_file):
        self._record(repository_file)
        code, output = run("workload", "report",
                           str(repository_file), "--top-k", "1")
        assert code == 0
        assert output.count("accesses=") == 1


class TestAnalyzeExitCode:
    def test_verification_error_exits_nonzero(self, repository_file,
                                              monkeypatch):
        from repro.lint.diagnostics import PlanDiagnostic
        from repro.query.engine import QueryEngine
        bad = PlanDiagnostic.make(
            "plan.ineq-order-agnostic", "Select",
            "injected error for the CLI gate test")
        monkeypatch.setattr(QueryEngine, "verify",
                            lambda self, query: [bad])
        code, output = run("query", str(repository_file),
                           "/library/book/title/text()", "--analyze")
        assert code == 1
        assert "plan verification failed" in output
        assert "plan.ineq-order-agnostic" in output


class TestVerify:
    ARGS = ("verify", "--seed", "0", "--docs", "1", "--queries", "4",
            "--rounds", "1", "--values", "12")

    def test_clean_run_exits_zero(self):
        code, output = run(*self.ARGS)
        assert code == 0
        assert "mismatches=0" in output
        assert "match the plaintext reference" in output

    def test_json_report(self):
        import json
        code, output = run(*self.ARGS, "--json")
        assert code == 0
        doc = json.loads(output)
        assert doc["ok"] is True and doc["seed"] == 0

    def test_mismatch_exits_one_and_writes_corpus(self, tmp_path,
                                                  monkeypatch):
        from repro.verify.report import Mismatch
        from repro.verify import runner

        def rigged(seed, **kwargs):
            from repro.verify.report import VerifyReport
            report = VerifyReport(seed=seed)
            report.add(Mismatch(
                layer="codec", check="ineq", codec="alm",
                description="injected for the CLI gate test",
                reproducer={"values": ["b", "a"]}))
            return report

        monkeypatch.setattr(runner, "run_codec_oracle",
                            lambda seed, **kw: rigged(seed))
        monkeypatch.setattr(runner, "run_engine_oracle",
                            lambda seed, **kw: rigged(seed))
        corpus = tmp_path / "corpus"
        code, output = run(*self.ARGS, "--corpus-dir", str(corpus))
        assert code == 1
        assert "injected for the CLI gate test" in output
        assert (corpus / "summary.json").exists()
        assert any(p.name.startswith("counterexample-")
                   for p in corpus.iterdir())


class TestProfile:
    QUERY = ("for $b in /library/book where $b/price > 8.0 "
             "return $b/title/text()")

    def test_emits_hot_span_table_or_short_run_note(
            self, repository_file):
        code, output = run("profile", str(repository_file),
                           self.QUERY, "--hz", "500",
                           "--repeat", "50")
        assert code == 0
        assert "self%" in output or "no samples" in output

    def test_flamegraph_file(self, repository_file, tmp_path):
        folded = tmp_path / "out.folded"
        code, output = run("profile", str(repository_file),
                           self.QUERY, "--hz", "997",
                           "--repeat", "200",
                           "--flamegraph", str(folded))
        assert code == 0
        assert folded.exists()
        # acceptance: folded stacks with per-span shares <= 100%
        for line in folded.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert stack  # span path prefix present

    def test_json_shares_sum_to_at_most_one(self, repository_file):
        import json as json_module
        code, output = run("profile", str(repository_file),
                           self.QUERY, "--hz", "997",
                           "--repeat", "200", "--json")
        assert code == 0
        payload = json_module.loads(output)
        total = sum(row["self_share"] for row in payload["shares"])
        assert total <= 1.0 + 1e-9

    def test_query_analyze_profile_renders_hot_spans(
            self, repository_file):
        code, output = run("query", str(repository_file),
                           self.QUERY, "--analyze", "--profile")
        assert code == 0
        assert "hot spans" in output


class TestPerfReport:
    def test_report_tables(self, repository_file):
        code, output = run(
            "perf", "report", str(repository_file),
            "--query", "/library/book/title",
            "--query", ("for $b in /library/book "
                        "where $b/price > 8.0 return $b/title"),
            "--repeat", "2", "--workers", "2")
        assert code == 0
        assert "-- serving latency by query class --" in output
        assert "path" in output and "scan" in output
        assert "-- cache hit rates --" in output

    def test_json_report(self, repository_file):
        import json as json_module
        code, output = run(
            "perf", "report", str(repository_file),
            "--query", "/library/book/title", "--json")
        assert code == 0
        payload = json_module.loads(output)
        assert payload["classes"]["path"]["count"] >= 1
        assert "plan" in payload["caches"]

    def test_queries_file(self, repository_file, tmp_path):
        queries = tmp_path / "queries.txt"
        queries.write_text("/library/book/title\n\n"
                           "/library/book/price\n", encoding="utf-8")
        code, output = run("perf", "report", str(repository_file),
                           "--queries-file", str(queries))
        assert code == 0
        assert "path" in output

    def test_no_queries_errors(self, repository_file):
        code, output = run("perf", "report", str(repository_file))
        assert code == 1
        assert "needs --query" in output

    def test_violated_slo_exits_one(self, repository_file):
        code, output = run(
            "perf", "report", str(repository_file),
            "--query", "/library/book/title",
            "--slo", "path:p95:0.000001")
        assert code == 1
        assert "VIOLATED" in output

    def test_met_slo_exits_zero(self, repository_file):
        code, output = run(
            "perf", "report", str(repository_file),
            "--query", "/library/book/title",
            "--slo", "path:p95:60000")
        assert code == 0
        assert "[OK]" in output

    def test_bad_slo_spec_errors(self, repository_file):
        code, output = run("perf", "report", str(repository_file),
                           "--query", "/library/book/title",
                           "--slo", "nonsense")
        assert code == 1
        assert "not CLASS:pNN:MILLIS" in output


class TestBenchCompare:
    def make_trajectory(self, path, walls):
        import json as json_module
        points = [{"experiment": "smoke", "query": "Q1",
                   "wall_s": w} for w in walls]
        path.write_text(json_module.dumps({"points": points}),
                        encoding="utf-8")

    def test_pass_exits_zero(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        self.make_trajectory(baseline, [1.0, 1.0, 1.0])
        self.make_trajectory(current, [1.0, 1.1, 0.9])
        code, output = run("bench", "compare",
                           "--baseline", str(baseline),
                           "--trajectory", str(current))
        assert code == 0
        assert "gate: PASS" in output

    def test_regression_exits_one(self, tmp_path):
        baseline = tmp_path / "base.json"
        current = tmp_path / "cur.json"
        self.make_trajectory(baseline, [1.0, 1.0, 1.0])
        self.make_trajectory(current, [10.0, 10.0, 10.0])
        code, output = run("bench", "compare",
                           "--baseline", str(baseline),
                           "--trajectory", str(current))
        assert code == 1
        assert "regression" in output


class TestTop:
    def test_once_local_mode(self, repository_file):
        code, output = run(
            "top", str(repository_file), "--once", "--slow-ms", "0",
            "--query", "/library/book/title",
            "--query",
            'for $b in /library/book where $b/title = "Dune" '
            "return $b")
        assert code == 0
        assert "repro top" in output
        assert "QPS" in output
        assert "caches:" in output
        assert "path" in output and "point" in output
        assert "latest slow queries" in output

    def test_local_mode_without_queries_errors(self, repository_file):
        code, output = run("top", str(repository_file), "--once")
        assert code == 1
        assert "workload" in output

    def test_once_scrape_mode(self, repository_file):
        from repro.service.session import Database
        from repro.service.slowlog import SlowQueryLog

        database = Database.open(
            repository_file,
            slow_log=SlowQueryLog(threshold_ms=0.0))
        database.session().execute("/library/book/title")
        with database.serve_telemetry() as server:
            code, output = run("top", server.url, "--once")
        assert code == 0
        assert f"scrape {server.url}" in output
        assert "path" in output
        assert "latest slow queries" in output

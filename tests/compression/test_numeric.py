"""Tests for numeric codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.numeric import (
    FloatCodec,
    IntegerCodec,
    is_canonical_float,
    is_canonical_int,
)
from repro.errors import CodecDomainError, CorruptDataError


class TestCanonicalChecks:
    def test_int_canonical(self):
        assert is_canonical_int("42")
        assert is_canonical_int("-7")
        assert not is_canonical_int("007")
        assert not is_canonical_int("4.0")
        assert not is_canonical_int("abc")

    def test_float_canonical(self):
        assert is_canonical_float("1.5")
        assert not is_canonical_float("1.50")
        assert not is_canonical_float("nan")
        assert not is_canonical_float("inf")
        assert not is_canonical_float("x")


class TestIntegerCodec:
    def test_roundtrip(self):
        codec = IntegerCodec.train(["10", "200", "35"])
        for v in ("10", "200", "35", "150"):
            assert codec.decode(codec.encode(v)) == v

    def test_order_preserved(self):
        codec = IntegerCodec.train(["-50", "1000"])
        values = ["-50", "-3", "0", "7", "999"]
        encoded = [codec.encode(v) for v in values]
        assert encoded == sorted(encoded)

    def test_width_is_minimal(self):
        assert IntegerCodec.train(["0", "255"]).width == 1
        assert IntegerCodec.train(["0", "256"]).width == 2

    def test_out_of_range(self):
        codec = IntegerCodec.train(["0", "10"])
        with pytest.raises(CodecDomainError):
            codec.encode("100000")

    def test_non_canonical_rejected(self):
        codec = IntegerCodec.train(["1"])
        with pytest.raises(CodecDomainError):
            codec.encode("01")

    def test_train_rejects_text(self):
        with pytest.raises(CodecDomainError):
            IntegerCodec.train(["hello"])

    def test_empty_training(self):
        codec = IntegerCodec.train([])
        assert codec.decode(codec.encode("0")) == "0"

    def test_bad_width_decode(self):
        codec = IntegerCodec.train(["0", "10"])
        other = IntegerCodec.train(["0", "100000"])
        with pytest.raises(CorruptDataError):
            codec.decode(other.encode("5"))

    @given(st.lists(st.integers(-10**9, 10**9), min_size=1, max_size=30))
    def test_roundtrip_property(self, numbers):
        values = [str(n) for n in numbers]
        codec = IntegerCodec.train(values)
        assert [codec.decode(codec.encode(v)) for v in values] == values


class TestFloatCodec:
    def test_roundtrip(self):
        codec = FloatCodec()
        for v in ("1.5", "-2.25", "0.0", "1e+100", "-3.7"):
            assert codec.decode(codec.encode(v)) == repr(float(v))

    def test_order_preserved_across_signs(self):
        codec = FloatCodec()
        values = ["-100.5", "-1.25", "0.0", "0.5", "42.75"]
        encoded = [codec.encode(v) for v in values]
        assert encoded == sorted(encoded)

    def test_rejects_text(self):
        with pytest.raises(CodecDomainError):
            FloatCodec().encode("pi")

    # ``+ 0.0`` normalizes -0.0 away: "-0.0" is outside the codec's
    # canonical domain (its total-order transform would place it
    # strictly below "0.0" while float comparison calls them equal).
    @given(st.floats(allow_nan=False, allow_infinity=False)
           .map(lambda f: f + 0.0))
    def test_roundtrip_property(self, x):
        codec = FloatCodec()
        assert codec.decode(codec.encode(repr(x))) == repr(x)

    def test_rejects_negative_zero(self):
        with pytest.raises(CodecDomainError):
            FloatCodec().encode("-0.0")

    @given(st.floats(allow_nan=False, allow_infinity=False)
           .map(lambda f: f + 0.0),
           st.floats(allow_nan=False, allow_infinity=False)
           .map(lambda f: f + 0.0))
    def test_order_property(self, a, b):
        codec = FloatCodec()
        ea, eb = codec.encode(repr(a)), codec.encode(repr(b))
        if a < b:
            assert ea < eb
        elif a > b:
            assert eb < ea

"""Tests for Hu-Tucker optimal alphabetical codes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.huffman import code_lengths_from_frequencies
from repro.compression.hutucker import HuTuckerCodec, hu_tucker_code_lengths
from repro.errors import CodecDomainError

CORPUS = ["romeo", "juliet", "verona", "montague", "capulet"]


class TestLengths:
    def test_single(self):
        assert hu_tucker_code_lengths([5.0]) == [1]

    def test_two(self):
        assert hu_tucker_code_lengths([1.0, 1.0]) == [1, 1]

    def test_kraft_inequality(self):
        lengths = hu_tucker_code_lengths([5, 1, 9, 2, 7, 3])
        assert sum(2 ** -l for l in lengths) <= 1.0 + 1e-12

    def test_uniform_is_balanced(self):
        lengths = hu_tucker_code_lengths([1.0] * 8)
        assert lengths == [3] * 8

    def test_cost_at_most_huffman_plus_one(self):
        """Hu-Tucker is within 1 bit/symbol of unrestricted Huffman."""
        weights = {chr(97 + i): w
                   for i, w in enumerate([50, 3, 20, 1, 1, 9, 30])}
        huffman = code_lengths_from_frequencies(weights)
        hutucker = hu_tucker_code_lengths(list(weights.values()))
        h_cost = sum(weights[s] * l for s, l in huffman.items())
        ht_cost = sum(w * l for w, l in zip(weights.values(), hutucker))
        assert ht_cost <= h_cost + sum(weights.values())


class TestCodec:
    def test_roundtrip(self):
        codec = HuTuckerCodec.train(CORPUS)
        for value in CORPUS:
            assert codec.decode(codec.encode(value)) == value

    def test_order_preserved(self):
        codec = HuTuckerCodec.train(CORPUS)
        ordered = sorted(CORPUS)
        encoded = [codec.encode(v) for v in ordered]
        assert encoded == sorted(encoded)

    def test_prefix_case(self):
        codec = HuTuckerCodec.train(["abc", "abcdef"])
        assert codec.encode("abc") < codec.encode("abcdef")

    def test_unseen_character(self):
        codec = HuTuckerCodec.train(CORPUS)
        with pytest.raises(CodecDomainError):
            codec.encode("xyz123")

    def test_empty_string_sorts_first(self):
        codec = HuTuckerCodec.train(CORPUS)
        assert codec.encode("") < codec.encode("a" if "a" in "".join(CORPUS)
                                               else CORPUS[0])

    def test_properties_match_design(self):
        assert HuTuckerCodec.properties.eq
        assert HuTuckerCodec.properties.ineq
        assert HuTuckerCodec.properties.wild


@settings(deadline=None)
@given(st.lists(st.text(alphabet="abcdegh ", min_size=1), min_size=2,
                max_size=15))
def test_order_preservation_property(values):
    codec = HuTuckerCodec.train(values)
    for a in values:
        for b in values:
            assert (codec.encode(a) < codec.encode(b)) == (a < b)


@settings(deadline=None)
@given(st.lists(st.floats(min_value=0.5, max_value=100.0), min_size=1,
                max_size=20))
def test_lengths_admit_alphabetic_tree(weights):
    """Constructor's reconstruction check must pass for any weights."""
    symbols = [chr(97 + i) for i in range(len(weights))]
    HuTuckerCodec(symbols, hu_tucker_code_lengths(weights))

"""Tests for the order-preserving arithmetic codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.arithmetic import ArithmeticCodec
from repro.errors import CodecDomainError

CORPUS = ["alpha", "beta", "gamma", "delta", "epsilon zeta"]


class TestCodec:
    def test_roundtrip(self):
        codec = ArithmeticCodec.train(CORPUS)
        for value in CORPUS:
            assert codec.decode(codec.encode(value)) == value

    def test_empty_string(self):
        codec = ArithmeticCodec.train(CORPUS)
        assert codec.decode(codec.encode("")) == ""

    def test_order_preserved(self):
        codec = ArithmeticCodec.train(CORPUS)
        ordered = sorted(CORPUS)
        encoded = [codec.encode(v) for v in ordered]
        assert encoded == sorted(encoded)

    def test_prefix_sorts_first(self):
        codec = ArithmeticCodec.train(["ab", "abab"])
        assert codec.encode("ab") < codec.encode("abab")

    def test_unseen_character(self):
        codec = ArithmeticCodec.train(CORPUS)
        with pytest.raises(CodecDomainError):
            codec.encode("UPPER")

    def test_skewed_input_compresses(self):
        values = ["a" * 64 + "b"]
        codec = ArithmeticCodec.train(values)
        assert codec.encode(values[0]).bits < 8 * 65

    def test_large_counts_rescaled(self):
        counts = {"a": 10 ** 9, "b": 1}
        codec = ArithmeticCodec(counts)
        assert codec.decode(codec.encode("ab")) == "ab"

    def test_determinism(self):
        codec = ArithmeticCodec.train(CORPUS)
        assert codec.encode("alpha") == codec.encode("alpha")

    def test_properties_match_design(self):
        assert ArithmeticCodec.properties.eq
        assert ArithmeticCodec.properties.ineq
        assert not ArithmeticCodec.properties.wild


@settings(deadline=None, max_examples=50)
@given(st.lists(st.text(alphabet="ab cxyz", max_size=30), min_size=1,
                max_size=10))
def test_roundtrip_property(values):
    codec = ArithmeticCodec.train(values)
    for value in values:
        assert codec.decode(codec.encode(value)) == value


@settings(deadline=None, max_examples=50)
@given(st.lists(st.text(alphabet="abc", max_size=12), min_size=2,
                max_size=8))
def test_order_property(values):
    codec = ArithmeticCodec.train(values)
    encoded = {v: codec.encode(v) for v in values}
    for a in values:
        for b in values:
            assert (encoded[a] < encoded[b]) == (a < b)

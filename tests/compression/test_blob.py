"""Tests for blob (chunk) codecs."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.blob import Bzip2Blob, ZlibBlob
from repro.errors import CorruptDataError


@pytest.fixture(params=[ZlibBlob, Bzip2Blob])
def blob(request):
    return request.param()


class TestChunkInterface:
    def test_chunk_roundtrip(self, blob):
        data = b"hello world " * 100
        assert blob.decompress_chunk(blob.compress_chunk(data)) == data

    def test_repetitive_data_shrinks(self, blob):
        data = b"abcabc" * 500
        assert len(blob.compress_chunk(data)) < len(data) // 4

    def test_corrupt_chunk_raises(self, blob):
        with pytest.raises(CorruptDataError):
            blob.decompress_chunk(b"not compressed data")

    def test_encode_many_roundtrip(self, blob):
        values = ["alpha", "beta", "", "gamma delta"]
        assert blob.decode_many(blob.encode_many(values)) == values

    def test_encode_many_empty(self, blob):
        assert blob.decode_many(blob.encode_many([])) == []


class TestValueInterface:
    def test_value_roundtrip(self, blob):
        value = "the quick brown fox" * 10
        assert blob.decode(blob.encode(value)) == value

    def test_no_compressed_domain_predicates(self, blob):
        assert not blob.properties.eq
        assert not blob.properties.ineq
        assert not blob.properties.wild

    def test_is_blob_marker(self, blob):
        assert blob.is_blob

    def test_train_is_trivial(self):
        assert isinstance(ZlibBlob.train(["x"]), ZlibBlob)


@given(st.lists(st.text(
    alphabet=st.characters(min_codepoint=1, max_codepoint=500),
    max_size=40), max_size=15))
def test_encode_many_property(values):
    blob = ZlibBlob()
    assert blob.decode_many(blob.encode_many(values)) == values

"""Tests for the table-driven prefix decoder."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CompressedValue
from repro.compression.fastdecode import PrefixDecoder
from repro.compression.huffman import (
    canonical_codes,
    code_lengths_from_frequencies,
)
from repro.errors import CorruptDataError
from repro.util.bits import BitWriter


def encode_with(codes, symbols):
    writer = BitWriter()
    for symbol in symbols:
        code, length = codes[symbol]
        writer.write_bits(code, length)
    return CompressedValue(writer.getvalue(), writer.bit_length)


class TestPrefixDecoder:
    CODES = {"a": (0b0, 1), "b": (0b10, 2), "c": (0b11, 2)}

    def decoder(self, codes=None):
        codes = codes or self.CODES
        return PrefixDecoder({(c, l): s for s, (c, l) in codes.items()})

    def test_roundtrip(self):
        decoder = self.decoder()
        value = encode_with(self.CODES, "abcabcba")
        assert decoder.decode(value) == list("abcabcba")

    def test_empty(self):
        assert self.decoder().decode(CompressedValue(b"", 0)) == []

    def test_truncated_raises(self):
        decoder = self.decoder()
        value = encode_with(self.CODES, "b")
        with pytest.raises(CorruptDataError):
            decoder.decode(CompressedValue(value.data, 1))

    def test_long_codes_beyond_table(self):
        # Codes longer than the 12-bit table exercise the slow path.
        lengths = {chr(97 + i): max(1, i) for i in range(1, 18)}
        # Build a valid prefix code via the canonical constructor.
        freqs = {chr(97 + i): 1 << (20 - i) for i in range(18)}
        code_lengths = code_lengths_from_frequencies(freqs)
        codes = canonical_codes(code_lengths)
        decoder = PrefixDecoder(
            {(c, l): s for s, (c, l) in codes.items()})
        text = "".join(sorted(freqs)) * 3
        assert decoder.decode(encode_with(codes, text)) == list(text)
        assert lengths  # silence unused warning

    def test_single_symbol_code(self):
        decoder = PrefixDecoder({(0, 1): "x"})
        value = encode_with({"x": (0, 1)}, "xxxx")
        assert decoder.decode(value) == ["x", "x", "x", "x"]


@settings(deadline=None, max_examples=60)
@given(st.dictionaries(
    st.text(alphabet="abcdefgh", min_size=1, max_size=1),
    st.integers(1, 1_000_000), min_size=2, max_size=8),
    st.text(alphabet="abcdefgh", max_size=60))
def test_matches_canonical_huffman(freqs, text):
    """Fast decode == encode inverse for arbitrary canonical codes."""
    text = "".join(ch for ch in text if ch in freqs)
    code_lengths = code_lengths_from_frequencies(freqs)
    codes = canonical_codes(code_lengths)
    decoder = PrefixDecoder({(c, l): s for s, (c, l) in codes.items()})
    value = encode_with(codes, text)
    assert decoder.decode(value) == list(text)

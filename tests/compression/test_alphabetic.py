"""Tests for alphabetical code construction helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.alphabetic import (
    assign_alphabetic_codes,
    weight_balanced_code_lengths,
)


def bitstring(code: int, length: int) -> str:
    return format(code, f"0{length}b")


class TestWeightBalancedLengths:
    def test_empty(self):
        assert weight_balanced_code_lengths([]) == []

    def test_single(self):
        assert weight_balanced_code_lengths([5.0]) == [1]

    def test_uniform_balanced(self):
        lengths = weight_balanced_code_lengths([1.0] * 8)
        assert lengths == [3] * 8

    def test_skew_shortens_heavy_symbol(self):
        lengths = weight_balanced_code_lengths([100.0, 1.0, 1.0, 1.0])
        assert lengths[0] < max(lengths[1:])

    def test_kraft_inequality(self):
        lengths = weight_balanced_code_lengths([3, 1, 4, 1, 5, 9, 2, 6])
        assert sum(2.0 ** -l for l in lengths) <= 1.0 + 1e-12

    @settings(deadline=None)
    @given(st.lists(st.floats(0.01, 1000.0), min_size=1, max_size=100))
    def test_near_entropy(self, weights):
        import math
        lengths = weight_balanced_code_lengths(weights)
        total = sum(weights)
        cost = sum(w * l for w, l in zip(weights, lengths)) / total
        entropy = -sum((w / total) * math.log2(w / total)
                       for w in weights)
        assert cost <= entropy + 2.0 + 1e-9


class TestAssignAlphabeticCodes:
    def test_codes_strictly_increasing_as_bitstrings(self):
        lengths = weight_balanced_code_lengths([5, 1, 1, 7, 2, 2])
        codes = assign_alphabetic_codes(lengths)
        bits = [bitstring(c, l) for c, l in codes]
        for earlier, later in zip(bits, bits[1:]):
            assert earlier < later

    def test_prefix_free(self):
        lengths = weight_balanced_code_lengths([1, 2, 3, 4, 5])
        codes = assign_alphabetic_codes(lengths)
        bits = [bitstring(c, l) for c, l in codes]
        for i, a in enumerate(bits):
            for j, b in enumerate(bits):
                if i != j:
                    assert not b.startswith(a)

    def test_empty(self):
        assert assign_alphabetic_codes([]) == []

    @settings(deadline=None)
    @given(st.lists(st.floats(0.01, 100.0), min_size=2, max_size=60))
    def test_property_order_and_prefix_freedom(self, weights):
        lengths = weight_balanced_code_lengths(weights)
        codes = assign_alphabetic_codes(lengths)
        bits = [bitstring(c, l) for c, l in codes]
        for a, b in zip(bits, bits[1:]):
            assert a < b
            assert not b.startswith(a) and not a.startswith(b)

"""Property-based suite: every registered codec vs its advertised

:class:`~repro.compression.base.CompressionProperties`.

For arbitrary (generated) training sets, each codec must round-trip
exactly, and each predicate it advertises must agree with the
plaintext semantics: ``eq`` with value equality, ``ineq`` with
``sorted()`` over the source domain, ``wild`` with ``str.startswith``.
The suite is derandomized so CI failures reproduce locally.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.registry import available_codecs, train_codec

_SETTINGS = settings(derandomize=True, max_examples=30, deadline=None)

_TEXT = st.text(
    alphabet="ab01 .-éß日ÿ", max_size=10)


def _values_strategy(codec_name):
    if codec_name == "integer":
        return st.lists(
            st.integers(min_value=-2**63, max_value=2**63).map(str),
            min_size=1, max_size=12)
    if codec_name == "float":
        return st.lists(
            st.floats(allow_nan=False, allow_infinity=False,
                      allow_subnormal=False)
            .map(lambda f: repr(f + 0.0 if f else 0.0)),
            min_size=1, max_size=12)
    return st.lists(_TEXT, min_size=1, max_size=12)


def _domain_key(codec_name):
    if codec_name == "integer":
        return int
    if codec_name == "float":
        return float
    return lambda text: text


@pytest.mark.parametrize("codec_name", available_codecs())
class TestAdvertisedProperties:
    @_SETTINGS
    @given(data=st.data())
    def test_roundtrip_and_determinism(self, codec_name, data):
        values = data.draw(_values_strategy(codec_name))
        codec = train_codec(codec_name, values)
        for value in values:
            compressed = codec.encode(value)
            assert codec.decode(compressed) == value
            assert codec.encode(value) == compressed

    @_SETTINGS
    @given(data=st.data())
    def test_eq_agrees_with_value_equality(self, codec_name, data):
        values = data.draw(_values_strategy(codec_name))
        codec = train_codec(codec_name, values)
        if not codec.properties.eq:
            pytest.skip(f"{codec_name} does not advertise eq")
        encoded = [(v, codec.encode(v)) for v in values]
        for value_a, bits_a in encoded:
            for value_b, bits_b in encoded:
                assert (bits_a == bits_b) == (value_a == value_b), (
                    value_a, value_b)

    @_SETTINGS
    @given(data=st.data())
    def test_ineq_agrees_with_sorted(self, codec_name, data):
        values = data.draw(_values_strategy(codec_name))
        codec = train_codec(codec_name, values)
        if not codec.properties.ineq:
            pytest.skip(f"{codec_name} does not advertise ineq")
        key = _domain_key(codec_name)
        by_code = sorted(values, key=codec.encode)
        assert [key(v) for v in by_code] == \
            sorted(key(v) for v in values)

    @_SETTINGS
    @given(data=st.data())
    def test_wild_agrees_with_startswith(self, codec_name, data):
        values = data.draw(_values_strategy(codec_name))
        codec = train_codec(codec_name, values)
        if not codec.properties.wild:
            pytest.skip(f"{codec_name} does not advertise wild")
        index = data.draw(st.integers(min_value=0,
                                      max_value=len(values) - 1))
        cut = data.draw(st.integers(min_value=0, max_value=10))
        probe = values[index][:cut]
        encoded_probe = codec.try_encode(probe)
        assert encoded_probe is not None   # built from trained chars
        for value in values:
            assert codec.encode(value).starts_with(encoded_probe) == \
                value.startswith(probe), (value, probe)

    @_SETTINGS
    @given(data=st.data())
    def test_try_encode_out_of_model(self, codec_name, data):
        values = data.draw(_values_strategy(codec_name))
        codec = train_codec(codec_name, values)
        probe = "☃lpha"   # snowman never appears in any strategy
        compressed = codec.try_encode(probe)
        if compressed is not None:
            # Codecs with an open domain must still round-trip it.
            assert codec.decode(compressed) == probe

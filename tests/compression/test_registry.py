"""Tests for the codec registry."""

import pytest

from repro.compression.base import Codec
from repro.compression.registry import (
    STRING_ALGORITHMS,
    available_codecs,
    codec_class,
    register_codec,
    train_codec,
)
from repro.errors import UnknownCodecError


class TestLookup:
    def test_known_names(self):
        for name in ("huffman", "alm", "hutucker", "arithmetic",
                     "integer", "float", "zlib", "bzip2"):
            assert codec_class(name).name == name

    def test_unknown_name(self):
        with pytest.raises(UnknownCodecError):
            codec_class("snappy")

    def test_available_sorted(self):
        names = available_codecs()
        assert names == sorted(names)

    def test_string_algorithms_subset(self):
        assert set(STRING_ALGORITHMS) <= set(available_codecs())


class TestTraining:
    def test_train_dispatch(self):
        codec = train_codec("huffman", ["aa", "bb"])
        assert codec.decode(codec.encode("ab")) == "ab"

    def test_every_string_algorithm_trains_and_roundtrips(self):
        values = ["foo bar", "baz", "foo foo"]
        for name in STRING_ALGORITHMS:
            codec = train_codec(name, values)
            for value in values:
                assert codec.decode(codec.encode(value)) == value


class TestRegisterCodec:
    def test_custom_codec(self):
        class Identity(Codec):
            name = "identity-test"

            @classmethod
            def train(cls, values):
                return cls()

            def encode(self, value):
                from repro.compression.base import CompressedValue
                data = value.encode("utf-8")
                return CompressedValue(data, len(data) * 8)

            def decode(self, compressed):
                return compressed.data.decode("utf-8")

            def model_size_bytes(self):
                return 0

        register_codec(Identity)
        codec = train_codec("identity-test", [])
        assert codec.decode(codec.encode("hi")) == "hi"

"""Codec source-model serialization must be bit-exact."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.registry import STRING_ALGORITHMS, train_codec
from repro.compression.serialization import (
    deserialize_codec,
    serialize_codec,
)
from repro.errors import CorruptDataError, UnknownCodecError

CORPUS = ["the quick brown fox", "jumps over", "the lazy dog",
          "pack my box with five dozen jugs"]


class TestRoundTrip:
    @pytest.mark.parametrize("name", STRING_ALGORITHMS)
    def test_string_codecs_bit_exact(self, name):
        codec = train_codec(name, CORPUS)
        clone = deserialize_codec(serialize_codec(codec))
        for value in CORPUS:
            original = codec.encode(value)
            restored = clone.encode(value)
            assert original == restored, name
            assert clone.decode(original) == value

    def test_integer_codec(self):
        codec = train_codec("integer", ["-5", "1000", "42"])
        clone = deserialize_codec(serialize_codec(codec))
        assert clone.encode("7") == codec.encode("7")
        assert clone.decode(codec.encode("-5")) == "-5"

    def test_float_codec(self):
        codec = train_codec("float", ["1.5"])
        clone = deserialize_codec(serialize_codec(codec))
        assert clone.encode("2.25") == codec.encode("2.25")

    def test_blob_codecs(self):
        for name in ("zlib", "bzip2"):
            codec = train_codec(name, [])
            clone = deserialize_codec(serialize_codec(codec))
            chunk = b"hello " * 50
            assert clone.decompress_chunk(
                codec.compress_chunk(chunk)) == chunk

    def test_alm_interval_symbols_preserved(self):
        # The paper's nested-token case must survive serialization.
        codec = train_codec("alm", ["there", "their", "these", "the"])
        clone = deserialize_codec(serialize_codec(codec))
        for value in ("the", "there", "their", "these", "th", "hee"):
            assert clone.encode(value) == codec.encode(value)


class TestErrors:
    def test_unknown_type_tag(self):
        with pytest.raises(CorruptDataError):
            deserialize_codec(b"\xff")

    def test_truncated(self):
        codec = train_codec("huffman", CORPUS)
        data = serialize_codec(codec)
        with pytest.raises(CorruptDataError):
            deserialize_codec(data[: len(data) // 2])

    def test_unregistered_codec(self):
        from repro.compression.base import Codec

        class Weird(Codec):
            name = "weird"

            @classmethod
            def train(cls, values):
                return cls()

            def encode(self, value):
                raise NotImplementedError

            def decode(self, compressed):
                raise NotImplementedError

            def model_size_bytes(self):
                return 0

        with pytest.raises(UnknownCodecError):
            serialize_codec(Weird())


@settings(deadline=None, max_examples=30)
@given(st.lists(st.text(alphabet="abc def", min_size=1, max_size=12),
                min_size=1, max_size=12))
def test_roundtrip_property(values):
    for name in ("huffman", "alm", "hutucker", "arithmetic"):
        codec = train_codec(name, values)
        clone = deserialize_codec(serialize_codec(codec))
        for value in values:
            assert clone.encode(value) == codec.encode(value)

"""Tests for the ALM order-preserving dictionary codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.alm import ALMCodec, select_tokens
from repro.errors import CodecDomainError

CORPUS = ["there is a tide in the affairs of men",
          "their hearts are in the right place",
          "these are the times that try souls",
          "the theory of the these there their"]


class TestTokenSelection:
    def test_frequent_substrings_found(self):
        tokens = select_tokens(CORPUS, max_tokens=30)
        assert any("the" in t for t in tokens)

    def test_cap_respected(self):
        assert len(select_tokens(CORPUS, max_tokens=5)) <= 5

    def test_empty_corpus(self):
        assert select_tokens([]) == []


class TestPaperExample:
    """The 'the/there/their/these' construction from Figure 2."""

    def test_interval_symbols_order(self):
        codec = ALMCodec(list("abcdefghijlmnorstuvz") + ["the", "there"])
        # their = the + ir; there = there; these = the + se.
        their = codec.encode("their")
        there = codec.encode("there")
        these = codec.encode("these")
        assert their < there < these

    def test_token_exactly_equal(self):
        codec = ALMCodec(list("aehrst") + ["the", "there"])
        assert codec.encode("the") < codec.encode("there")
        assert codec.decode(codec.encode("there")) == "there"

    def test_segmentation_uses_longest_match(self):
        codec = ALMCodec(list("aehirst") + ["the", "there"])
        # "there" must be one token, not the + r + e.
        assert codec.encode("there").bits <= codec.encode("theri").bits


class TestCodec:
    def test_roundtrip(self):
        codec = ALMCodec.train(CORPUS)
        for value in CORPUS:
            assert codec.decode(codec.encode(value)) == value

    def test_empty_string(self):
        codec = ALMCodec.train(CORPUS)
        assert codec.decode(codec.encode("")) == ""

    def test_order_preserved_on_corpus(self):
        codec = ALMCodec.train(CORPUS)
        ordered = sorted(CORPUS)
        encoded = [codec.encode(v) for v in ordered]
        assert encoded == sorted(encoded)

    def test_dictionary_beats_char_codes_on_repetitive_text(self):
        values = ["the cat and the dog and the bird"] * 4
        trained = ALMCodec.train(values)
        naive = ALMCodec(sorted({c for v in values for c in v}))
        assert (trained.encode(values[0]).bits
                < naive.encode(values[0]).bits)

    def test_unseen_character(self):
        codec = ALMCodec.train(CORPUS)
        with pytest.raises(CodecDomainError):
            codec.encode("UPPERCASE")

    def test_determinism(self):
        codec = ALMCodec.train(CORPUS)
        value = CORPUS[0]
        assert codec.encode(value) == codec.encode(value)

    def test_symbol_count_at_least_tokens(self):
        codec = ALMCodec.train(CORPUS)
        assert codec.symbol_count >= len(codec.tokens)

    def test_model_size_positive(self):
        assert ALMCodec.train(CORPUS).model_size_bytes() > 0

    def test_rejects_empty_token(self):
        with pytest.raises(ValueError):
            ALMCodec(["a", ""])

    def test_properties_match_paper(self):
        assert ALMCodec.properties.eq
        assert ALMCodec.properties.ineq
        assert not ALMCodec.properties.wild

    def test_decompression_cheaper_than_huffman(self):
        from repro.compression.huffman import HuffmanCodec
        assert ALMCodec.decompression_cost < HuffmanCodec.decompression_cost


@settings(deadline=None, max_examples=50)
@given(st.lists(st.text(alphabet="abct he", max_size=25), min_size=1,
                max_size=10))
def test_roundtrip_property(values):
    codec = ALMCodec.train(values)
    for value in values:
        assert codec.decode(codec.encode(value)) == value


@settings(deadline=None, max_examples=50)
@given(st.lists(st.text(alphabet="abc", max_size=15), min_size=2,
                max_size=8))
def test_order_property(values):
    codec = ALMCodec.train(values)
    encoded = {v: codec.encode(v) for v in values}
    for a in values:
        for b in values:
            assert (encoded[a] < encoded[b]) == (a < b), (a, b)


@settings(deadline=None, max_examples=30)
@given(st.lists(st.sampled_from(
    ["the", "there", "their", "these", "them", "then", "tha", "thf",
     "t", "th", "thereafter", "x", "theyx"]), min_size=2, max_size=10))
def test_order_property_nested_tokens(values):
    """Order preservation with deliberately nested dictionary tokens."""
    codec = ALMCodec(list("abcdefghijklmnopqrstuvwxyz")
                     + ["the", "there", "them", "these"])
    encoded = {v: codec.encode(v) for v in values}
    for a in values:
        for b in values:
            assert (encoded[a] < encoded[b]) == (a < b), (a, b)

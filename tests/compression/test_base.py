"""Tests for CompressedValue ordering and codec properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.base import CodecProperties, CompressedValue
from repro.util.bits import bits_to_bytes


def cv(bits: str) -> CompressedValue:
    return CompressedValue(bits_to_bytes(bits), len(bits))


class TestCompressedValueOrdering:
    def test_equal(self):
        assert cv("0101") == cv("0101")

    def test_bit_difference(self):
        assert cv("01") < cv("10")

    def test_prefix_sorts_first(self):
        assert cv("01") < cv("010")
        assert cv("01") < cv("011")

    def test_prefix_all_zero_extension(self):
        # "0" is a bit-prefix of "00": the shorter must sort first.
        assert cv("0") < cv("00")

    def test_cross_byte_boundary(self):
        assert cv("00000000") < cv("000000001")

    def test_hash_consistent(self):
        assert hash(cv("0101")) == hash(cv("0101"))

    def test_not_equal_other_type(self):
        assert cv("1") != "1"

    @given(st.text(alphabet="01", max_size=30),
           st.text(alphabet="01", max_size=30))
    def test_order_matches_bitstring_order(self, a, b):
        """(data, bits) ordering == bit-string ordering with prefix-first."""
        expected = a < b  # Python string compare is exactly prefix-first
        assert (cv(a) < cv(b)) == expected


class TestStartsWith:
    def test_exact(self):
        assert cv("0101").starts_with(cv("0101"))

    def test_proper_prefix(self):
        assert cv("010110").starts_with(cv("0101"))

    def test_longer_prefix_fails(self):
        assert not cv("01").starts_with(cv("0101"))

    def test_mismatch(self):
        assert not cv("1101").starts_with(cv("0101"))

    def test_empty_prefix(self):
        assert cv("1").starts_with(cv(""))

    def test_cross_byte(self):
        assert cv("0" * 9).starts_with(cv("0" * 8))
        assert not cv("0" * 8 + "1").starts_with(cv("0" * 9))


class TestCodecProperties:
    def test_supports(self):
        props = CodecProperties(eq=True, ineq=False, wild=True)
        assert props.supports("eq")
        assert not props.supports("ineq")
        assert props.supports("wild")

    def test_supports_unknown_kind(self):
        with pytest.raises(ValueError):
            CodecProperties(True, True, True).supports("fuzzy")

    def test_count_true(self):
        assert CodecProperties(True, True, False).count_true() == 2


class TestCompressionProperties:
    """`CompressionProperties` is the new name of the §3.2 capability
    tuple; `CodecProperties` stays as a compatibility alias."""

    def test_alias_is_the_same_class(self):
        from repro.compression.base import CompressionProperties
        assert CompressionProperties is CodecProperties

    def test_predicate_kinds_catalog(self):
        from repro.compression.base import PREDICATE_KINDS
        assert PREDICATE_KINDS == ("eq", "ineq", "wild")

    def test_supports_raises_on_any_unknown_kind(self):
        from repro.compression.base import CompressionProperties
        props = CompressionProperties(eq=True, ineq=True, wild=True)
        for kind in ("fuzzy", "EQ", "", "prefix", None):
            with pytest.raises(ValueError) as exc_info:
                props.supports(kind)
            assert "eq" in str(exc_info.value)

    def test_supports_cannot_silently_return(self):
        """Every declared kind returns a bool; everything else raises —
        there is no silent-None path left."""
        from repro.compression.base import (
            PREDICATE_KINDS,
            CompressionProperties,
        )
        props = CompressionProperties(eq=True, ineq=False, wild=True)
        for kind in PREDICATE_KINDS:
            assert isinstance(props.supports(kind), bool)

    def test_order_preserving_mirrors_ineq(self):
        from repro.compression.base import CompressionProperties
        assert CompressionProperties(
            eq=True, ineq=True, wild=False).order_preserving
        assert not CompressionProperties(
            eq=True, ineq=False, wild=True).order_preserving

"""Tests for the classical Huffman codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.huffman import (
    HuffmanCodec,
    canonical_codes,
    code_lengths_from_frequencies,
)
from repro.errors import CodecDomainError, CorruptDataError

CORPUS = ["the quick brown fox", "the lazy dog", "the the the"]


class TestCodeConstruction:
    def test_lengths_reflect_frequency(self):
        lengths = code_lengths_from_frequencies(
            {"a": 100, "b": 1, "c": 1})
        assert lengths["a"] < lengths["b"]

    def test_single_symbol(self):
        assert code_lengths_from_frequencies({"a": 5}) == {"a": 1}

    def test_empty(self):
        assert code_lengths_from_frequencies({}) == {}

    def test_kraft_equality(self):
        lengths = code_lengths_from_frequencies(
            {c: i + 1 for i, c in enumerate("abcdefg")})
        assert sum(2 ** -l for l in lengths.values()) == pytest.approx(1.0)

    def test_canonical_codes_prefix_free(self):
        codes = canonical_codes({"a": 1, "b": 2, "c": 2})
        bitstrings = {format(v, f"0{l}b") for v, l in codes.values()}
        for x in bitstrings:
            for y in bitstrings:
                if x != y:
                    assert not y.startswith(x)


class TestCodec:
    def test_roundtrip(self):
        codec = HuffmanCodec.train(CORPUS)
        for value in CORPUS:
            assert codec.decode(codec.encode(value)) == value

    def test_deterministic_equality(self):
        codec = HuffmanCodec.train(CORPUS)
        assert codec.encode("the") == codec.encode("the")
        assert codec.encode("the") != codec.encode("dog")

    def test_prefix_match_in_compressed_domain(self):
        codec = HuffmanCodec.train(CORPUS)
        full = codec.encode("the quick")
        prefix = codec.encode("the q")
        assert full.starts_with(prefix)
        assert not full.starts_with(codec.encode("dog"))

    def test_unseen_character_raises(self):
        codec = HuffmanCodec.train(CORPUS)
        with pytest.raises(CodecDomainError):
            codec.encode("Zebra!")

    def test_try_encode_returns_none(self):
        codec = HuffmanCodec.train(CORPUS)
        assert codec.try_encode("Zebra!") is None
        assert codec.try_encode("the") is not None

    def test_empty_string(self):
        codec = HuffmanCodec.train(CORPUS)
        assert codec.decode(codec.encode("")) == ""

    def test_compression_beats_fixed_width_on_skew(self):
        skewed = ["a" * 100 + "bcd"]
        codec = HuffmanCodec.train(skewed)
        encoded = codec.encode(skewed[0])
        assert encoded.bits < len(skewed[0]) * 2

    def test_truncated_stream_raises(self):
        # Frequencies force codes a:1 bit, b/c:2 bits; cutting "b" to one
        # bit leaves an incomplete codeword.
        codec = HuffmanCodec.from_frequencies({"a": 4, "b": 2, "c": 1})
        encoded = codec.encode("b")
        assert encoded.bits == 2
        from repro.compression.base import CompressedValue
        truncated = CompressedValue(encoded.data, 1)
        with pytest.raises(CorruptDataError):
            codec.decode(truncated)

    def test_model_size_positive(self):
        assert HuffmanCodec.train(CORPUS).model_size_bytes() > 0

    def test_properties_match_paper(self):
        assert HuffmanCodec.properties.eq
        assert not HuffmanCodec.properties.ineq
        assert HuffmanCodec.properties.wild


@given(st.lists(st.text(alphabet="abcdef ", min_size=1), min_size=1,
                max_size=20))
def test_roundtrip_property(values):
    codec = HuffmanCodec.train(values)
    for value in values:
        assert codec.decode(codec.encode(value)) == value

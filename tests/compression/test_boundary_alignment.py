"""Codeword-boundary regressions for compressed-domain predicates.

The ``wild`` predicate compares *bit* prefixes: a prefix's encoding
almost never ends on a byte boundary, and with variable-length codes
the boundary falls mid-codeword relative to the probed value.  These
tests pin the alignment cases for the prefix-code codecs and the
order-preservation invariant ALM's ``ineq`` support rests on,
cross-checked against plaintext ``str.startswith`` / ``sorted()``.
"""

import pytest

from repro.compression.registry import train_codec

CORPUS = ["ada", "adam", "adamant", "bo", "bob", "bobby", "", "café",
          "cafés", "x"]


def bit_length(codec, value):
    return codec.encode(value).bits


class TestHuffmanWildBoundaries:
    @pytest.fixture
    def codec(self):
        return train_codec("huffman", CORPUS)

    def test_prefix_encodings_end_mid_byte(self, codec):
        # The regression is only meaningful if probes actually land
        # off the byte grid; assert the fixture guarantees it.
        assert any(bit_length(codec, v[:k]) % 8
                   for v in CORPUS for k in range(1, len(v)))

    def test_every_true_prefix_matches(self, codec):
        for value in CORPUS:
            compressed = codec.encode(value)
            for k in range(len(value) + 1):
                probe = codec.encode(value[:k])
                assert compressed.starts_with(probe), (value, value[:k])

    def test_near_miss_prefixes_rejected(self, codec):
        # Same length, last character swapped: the code diverges in
        # the final codeword, possibly mid-byte.
        compressed = codec.encode("adam")
        assert not compressed.starts_with(codec.encode("adab"))
        assert not compressed.starts_with(codec.encode("bo"))

    def test_longer_probe_than_value_rejected(self, codec):
        assert not codec.encode("bo").starts_with(codec.encode("bob"))

    def test_mid_codeword_boundary_not_a_match(self, codec):
        # "adamant" vs probe "adamx": shares the first four codewords,
        # then diverges inside the fifth — the shared-bit run ends
        # mid-codeword and must not count as a prefix match.
        compressed = codec.encode("adamant")
        assert not compressed.starts_with(codec.encode("adamx"))

    def test_empty_prefix_matches_everything(self, codec):
        probe = codec.encode("")
        assert probe.bits == 0
        for value in CORPUS:
            assert codec.encode(value).starts_with(probe)


class TestHuTuckerWildBoundaries:
    """Hu-Tucker shares the bit-prefix predicate; pin the same cases."""

    @pytest.fixture
    def codec(self):
        return train_codec("hutucker", CORPUS)

    def test_true_prefixes_match_and_near_misses_do_not(self, codec):
        for value in ("adamant", "bobby", "cafés"):
            compressed = codec.encode(value)
            for k in range(len(value) + 1):
                assert compressed.starts_with(codec.encode(value[:k]))
            assert not compressed.starts_with(
                codec.encode(value[:-1] + "x"))

    def test_unaligned_probe_exists(self, codec):
        assert any(bit_length(codec, v[:k]) % 8
                   for v in CORPUS for k in range(1, len(v)))


class TestALMOrderPreservation:
    """ALM's ``ineq`` flag promises compressed order == value order —

    including the adversarial cases: values that are prefixes of other
    values (shared leading tokens) and the empty string.
    """

    def test_shared_prefix_values_sort_identically(self):
        values = ["go", "gold", "golden", "g", "golf", "goldfish"]
        codec = train_codec("alm", values)
        assert sorted(values, key=codec.encode) == sorted(values)

    def test_empty_string_sorts_first(self):
        values = ["b", "", "a", "ab"]
        codec = train_codec("alm", values)
        assert sorted(values, key=codec.encode) == ["", "a", "ab", "b"]

    def test_full_corpus_order(self):
        codec = train_codec("alm", CORPUS)
        assert sorted(CORPUS, key=codec.encode) == sorted(CORPUS)

    def test_pairwise_comparisons_agree(self):
        codec = train_codec("alm", CORPUS)
        for a in CORPUS:
            for b in CORPUS:
                assert ((codec.encode(a) < codec.encode(b)) ==
                        (a < b)), (a, b)

"""Serializer tests, including parse/serialize round-trips."""

from hypothesis import given
from hypothesis import strategies as st

from repro.xmlio.dom import parse
from repro.xmlio.writer import serialize


class TestSerialize:
    def test_simple(self):
        doc = parse("<a><b>x</b></a>")
        assert serialize(doc) == "<a><b>x</b></a>"

    def test_empty_element_collapsed(self):
        assert serialize(parse("<a></a>")) == "<a/>"

    def test_attributes(self):
        out = serialize(parse('<a x="1" y="two"/>'))
        assert out == '<a x="1" y="two"/>'

    def test_escaping(self):
        doc = parse("<a>&lt;&amp;&gt;</a>")
        out = serialize(doc)
        assert out == "<a>&lt;&amp;&gt;</a>"
        assert serialize(parse(out)) == out

    def test_attribute_escaping(self):
        doc = parse('<a x="&quot;&amp;"/>')
        reparsed = parse(serialize(doc))
        assert reparsed.root.attribute("x") == '"&'

    def test_pretty_print(self):
        out = serialize(parse("<a><b>x</b></a>"), indent="  ")
        assert out == "<a>\n  <b>x</b>\n</a>\n"


_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=300),
    min_size=1, max_size=20).filter(lambda s: s.strip())

_name = st.from_regex(r"[a-z][a-z0-9]{0,5}", fullmatch=True)


@st.composite
def _xml_tree(draw, depth=0):
    name = draw(_name)
    attrs = draw(st.dictionaries(_name, _text, max_size=2))
    attr_text = "".join(
        f' {k}="{v.replace("&", "&amp;").replace("<", "&lt;").replace(chr(34), "&quot;")}"'
        for k, v in attrs.items())
    if depth >= 2:
        children = []
    else:
        children = draw(st.lists(_xml_tree(depth=depth + 1), max_size=2))
    text = draw(_text | st.none())
    inner = "".join(children)
    if text is not None:
        escaped = (text.replace("&", "&amp;").replace("<", "&lt;")
                       .replace(">", "&gt;"))
        inner = escaped + inner
    return f"<{name}{attr_text}>{inner}</{name}>"


@given(_xml_tree())
def test_roundtrip_stable(xml_text):
    """serialize(parse(x)) is a fixpoint after one normalization pass."""
    once = serialize(parse(xml_text))
    twice = serialize(parse(once))
    assert once == twice

"""Direct tests for entity escaping/unescaping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import XMLSyntaxError
from repro.xmlio.escape import (
    escape_attribute,
    escape_text,
    resolve_entity,
    unescape,
)


class TestEscape:
    def test_text_escapes_markup(self):
        assert escape_text("a < b & c > d") == \
            "a &lt; b &amp; c &gt; d"

    def test_attribute_escapes_quotes(self):
        assert escape_attribute('say "hi" & <go>') == \
            "say &quot;hi&quot; &amp; &lt;go>"

    def test_no_op_for_plain_text(self):
        assert escape_text("plain text") == "plain text"


class TestResolveEntity:
    @pytest.mark.parametrize("name,expected", [
        ("amp", "&"), ("lt", "<"), ("gt", ">"), ("quot", '"'),
        ("apos", "'"), ("#65", "A"), ("#x41", "A"), ("#X41", "A"),
        ("#128512", "\U0001F600"),
    ])
    def test_known(self, name, expected):
        assert resolve_entity(name) == expected

    @pytest.mark.parametrize("name", ["nbsp", "#xZZ", "#", "#x",
                                      "#99999999999"])
    def test_bad(self, name):
        with pytest.raises(XMLSyntaxError):
            resolve_entity(name)


class TestUnescape:
    def test_mixed(self):
        assert unescape("1 &lt; 2 &amp;&amp; x") == "1 < 2 && x"

    def test_numeric(self):
        assert unescape("&#72;&#105;") == "Hi"

    def test_unterminated(self):
        with pytest.raises(XMLSyntaxError):
            unescape("broken &amp")

    def test_no_entities_fast_path(self):
        text = "nothing here"
        assert unescape(text) is text


@given(st.text(max_size=60))
def test_text_roundtrip_property(text):
    assert unescape(escape_text(text)) == text


@given(st.text(max_size=60))
def test_attribute_roundtrip_property(text):
    assert unescape(escape_attribute(text)) == text

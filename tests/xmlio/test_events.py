"""Tests for the event stream and well-formedness enforcement."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlio.events import (
    Characters,
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    iter_events,
)


class TestEventStream:
    def test_simple_document(self):
        events = list(iter_events("<a><b>x</b></a>"))
        assert events == [
            StartDocument(),
            StartElement("a"),
            StartElement("b"),
            Characters("x"),
            EndElement("b"),
            EndElement("a"),
            EndDocument(),
        ]

    def test_empty_tag_produces_both_events(self):
        events = list(iter_events("<a/>"))
        assert events[1:3] == [StartElement("a"), EndElement("a")]

    def test_attributes_carried(self):
        events = list(iter_events('<a id="7"/>'))
        assert events[1] == StartElement("a", (("id", "7"),))

    def test_whitespace_dropped_by_default(self):
        events = list(iter_events("<a>\n  <b/>\n</a>"))
        assert not any(isinstance(e, Characters) for e in events)

    def test_whitespace_kept_on_request(self):
        events = list(iter_events("<a> <b/> </a>", keep_whitespace=True))
        assert sum(isinstance(e, Characters) for e in events) == 2

    def test_comments_and_pis_skipped(self):
        events = list(iter_events('<?xml version="1.0"?><a><!--c--></a>'))
        assert len(events) == 4  # start doc, start a, end a, end doc


class TestWellFormedness:
    @pytest.mark.parametrize("text", [
        "<a><b></a></b>",    # crossing tags
        "<a>",               # unclosed
        "</a>",              # end without start
        "<a/><b/>",          # two roots
        "text<a/>",          # data before root
        "",                  # empty input
        "   ",               # whitespace only
    ])
    def test_rejected(self, text):
        with pytest.raises(XMLSyntaxError):
            list(iter_events(text))

    def test_trailing_whitespace_ok(self):
        events = list(iter_events("<a/>\n\n"))
        assert isinstance(events[-1], EndDocument)

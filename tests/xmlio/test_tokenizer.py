"""Tests for the from-scratch XML tokenizer."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlio.tokenizer import TokenType, tokenize


class TestBasicTokens:
    def test_simple_element(self):
        tokens = tokenize("<a>hi</a>")
        assert [t.type for t in tokens] == [
            TokenType.START_TAG, TokenType.TEXT, TokenType.END_TAG]
        assert tokens[0].value == "a"
        assert tokens[1].value == "hi"

    def test_empty_tag(self):
        (token,) = tokenize("<a/>")
        assert token.type == TokenType.EMPTY_TAG

    def test_attributes_in_order(self):
        (token,) = tokenize('<a x="1" y="2"/>')
        assert token.attributes == (("x", "1"), ("y", "2"))

    def test_single_quoted_attribute(self):
        (token,) = tokenize("<a x='v'/>")
        assert token.attributes == (("x", "v"),)

    def test_attribute_entity_resolved(self):
        (token,) = tokenize('<a x="a&amp;b"/>')
        assert token.attributes == (("x", "a&b"),)

    def test_text_entities(self):
        tokens = tokenize("<a>&lt;x&gt; &#65;&#x42;</a>")
        assert tokens[1].value == "<x> AB"

    def test_comment(self):
        tokens = tokenize("<a><!-- note --></a>")
        assert tokens[1].type == TokenType.COMMENT
        assert tokens[1].value == " note "

    def test_cdata(self):
        tokens = tokenize("<a><![CDATA[<raw>&]]></a>")
        assert tokens[1].type == TokenType.CDATA
        assert tokens[1].value == "<raw>&"

    def test_pi(self):
        tokens = tokenize('<?xml version="1.0"?><a/>')
        assert tokens[0].type == TokenType.PI

    def test_doctype_with_subset(self):
        tokens = tokenize('<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a/>')
        assert tokens[0].type == TokenType.DOCTYPE
        assert tokens[1].type == TokenType.EMPTY_TAG

    def test_whitespace_in_tags(self):
        (token,) = tokenize('<a  x = "1"  />')
        assert token.type == TokenType.EMPTY_TAG
        assert token.attributes == (("x", "1"),)

    def test_names_with_punctuation(self):
        tokens = tokenize("<ns:a-b.c_1/>")
        assert tokens[0].value == "ns:a-b.c_1"


class TestErrors:
    @pytest.mark.parametrize("text", [
        "<a x=1/>",            # unquoted attribute
        "<a x/>",              # attribute without value
        '<a x="1>',            # unterminated value
        "<!-- never closed",
        "<![CDATA[ never closed",
        "<a",                  # unterminated tag
        "</a",                 # malformed end tag
        "<1abc/>",             # bad name start
        '<a x="a<b"/>',        # '<' inside attribute value
        '<a x="1" x="2"/>',    # duplicate attribute
        "<a>&unknown;</a>",    # unknown entity
        "<a>&amp</a>",         # unterminated entity
        "<?pi never closed",
        "<!DOCTYPE unclosed",
    ])
    def test_malformed(self, text):
        with pytest.raises(XMLSyntaxError):
            tokenize(text)

    def test_error_carries_location(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            tokenize("<a>\n<b x=1/></a>")
        assert excinfo.value.line == 2

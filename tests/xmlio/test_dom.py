"""Tests for the lightweight DOM."""

from repro.xmlio.dom import Attribute, Element, Text, parse


class TestParse:
    def test_structure(self):
        doc = parse("<site><people><person id='p0'/></people></site>")
        assert doc.root.name == "site"
        people = doc.root.child_elements("people")[0]
        person = people.child_elements("person")[0]
        assert person.attribute("id") == "p0"
        assert person.parent is people

    def test_text(self):
        doc = parse("<a><b>hello</b><b>world</b></a>")
        assert doc.root.text() == "helloworld"

    def test_mixed_content(self):
        doc = parse("<a>one<b>two</b>three</a>")
        kinds = [type(c).__name__ for c in doc.root.children]
        assert kinds == ["Text", "Element", "Text"]


class TestNavigation:
    def test_descendants_in_document_order(self):
        doc = parse("<a><b><c/></b><d/></a>")
        names = [e.name for e in doc.root.descendants()]
        assert names == ["b", "c", "d"]

    def test_descendants_filtered(self):
        doc = parse("<a><b/><c><b/></c></a>")
        assert len(list(doc.root.descendants("b"))) == 2

    def test_iter_elements_includes_root(self):
        doc = parse("<a><b/></a>")
        assert [e.name for e in doc.iter_elements()] == ["a", "b"]

    def test_child_elements_skips_text(self):
        doc = parse("<a>x<b/>y</a>")
        assert [e.name for e in doc.root.child_elements()] == ["b"]


class TestConstruction:
    def test_append_sets_parent(self):
        root = Element("a")
        child = root.append(Element("b"))
        assert child.parent is root

    def test_set_attribute_replaces(self):
        el = Element("a")
        el.set_attribute("x", "1")
        el.set_attribute("x", "2")
        assert el.attribute("x") == "2"
        assert len(el.attributes) == 1

    def test_attribute_missing_is_none(self):
        assert Element("a").attribute("nope") is None

    def test_text_node(self):
        el = Element("a", children=[Text("v")])
        assert el.text() == "v"
        assert isinstance(el.children[0], Text)

    def test_attribute_nodes(self):
        el = Element("a", attributes=[Attribute("k", "v")])
        assert el.attributes[0].parent is el

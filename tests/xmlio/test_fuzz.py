"""Fuzzing the XML layer: malformed input must fail *cleanly*.

The tokenizer/parser may reject garbage (with :class:`XMLSyntaxError`,
carrying a position) but must never raise anything else or hang —
the loader is exposed to arbitrary user files.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XMLSyntaxError
from repro.storage.loader import load_document
from repro.xmlio.dom import parse
from repro.xmlio.tokenizer import tokenize
from repro.xmlio.writer import serialize

_XMLISH = st.text(
    alphabet=st.sampled_from(list("<>/=\"'& ;abcdeXY01[]!?-\n\t")),
    max_size=120)


@settings(deadline=None, max_examples=300)
@given(_XMLISH)
def test_tokenizer_never_crashes(text):
    try:
        tokenize(text)
    except XMLSyntaxError:
        pass  # rejection is fine; any other exception is a bug


@settings(deadline=None, max_examples=200)
@given(_XMLISH)
def test_parse_never_crashes(text):
    try:
        parse(text)
    except XMLSyntaxError:
        pass


@settings(deadline=None, max_examples=100)
@given(_XMLISH)
def test_loader_never_crashes(text):
    try:
        load_document(text)
    except XMLSyntaxError:
        pass


@settings(deadline=None, max_examples=100)
@given(st.text(max_size=80))
def test_arbitrary_unicode_content_roundtrips(payload):
    """Any text survives escape -> serialize -> parse -> text()."""
    from repro.xmlio.escape import escape_text
    document = parse(f"<a>{escape_text(payload)}</a>")
    if payload.strip():
        assert document.root.text() == payload
    reparsed = parse(serialize(document))
    assert reparsed.root.text() == document.root.text()


class TestPathological:
    def test_deep_nesting(self):
        depth = 500
        text = "".join(f"<n{i}>" for i in range(depth)) + "x" + \
            "".join(f"</n{i}>" for i in reversed(range(depth)))
        document = parse(text)
        assert document.root.name == "n0"
        repo = load_document(text)
        assert repo.statistics.max_depth == depth

    def test_many_siblings(self):
        text = "<r>" + "<c/>" * 5000 + "</r>"
        repo = load_document(text)
        assert repo.statistics.element_count == 5001

    def test_huge_attribute(self):
        value = "v" * 50_000
        repo = load_document(f'<a x="{value}"/>')
        assert repo.attribute_of(0, "x") == value

    def test_many_distinct_tags(self):
        text = "<r>" + "".join(f"<t{i}/>" for i in range(300)) + "</r>"
        repo = load_document(text)
        assert len(repo.dictionary) == 301
        assert repo.dictionary.code_bits >= 9

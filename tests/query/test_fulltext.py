"""Tests for the §6 full-text extension."""

import pytest

from repro.baselines.galax import GalaxEngine
from repro.query.engine import QueryEngine
from repro.query.fulltext import FullTextIndex, tokenize
from repro.storage.loader import load_document

DOC = """
<site>
  <item id="i0"><name>gold ring</name>
    <desc>a fine Gold band, hand made</desc></item>
  <item id="i1"><name>silver chain</name>
    <desc>polished silver links</desc></item>
  <item id="i2"><name>golden bowl</name>
    <desc>large golden bowl with gold leaf</desc></item>
</site>
"""

QUERY = ('for $i in /site/item '
         'where word-contains($i/desc/text(), "gold") '
         "return $i/@id")


@pytest.fixture(scope="module")
def repo():
    return load_document(DOC)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello, World!") == ["hello", "world"]

    def test_numbers_kept(self):
        assert tokenize("item 42") == ["item", "42"]

    def test_underscore_not_a_word_char(self):
        assert tokenize("a_b") == ["a", "b"]

    def test_empty(self):
        assert tokenize("") == []


class TestWordContainsFunction:
    def test_whole_word_semantics(self, repo):
        engine = QueryEngine(repo)
        # "gold" matches i0 and i2 (gold leaf) but NOT "golden" alone.
        assert engine.execute(QUERY).items == ["i0", "i2"]

    def test_case_insensitive(self, repo):
        engine = QueryEngine(repo)
        result = engine.execute(
            'for $i in /site/item '
            'where word-contains($i/desc/text(), "GOLD") '
            "return $i/@id")
        assert result.items == ["i0", "i2"]

    def test_multi_word_needle(self, repo):
        engine = QueryEngine(repo)
        result = engine.execute(
            'for $i in /site/item '
            'where word-contains($i/desc/text(), "gold leaf") '
            "return $i/@id")
        assert result.items == ["i2"]

    def test_galax_agrees(self, repo):
        assert QueryEngine(repo).execute(QUERY).to_xml() == \
            GalaxEngine(DOC).execute_to_xml(QUERY)


class TestFullTextIndex:
    def test_build_and_lookup(self, repo):
        index = FullTextIndex.build(
            repo.container("/site/item/desc/#text"))
        assert index.word_count > 5
        assert len(index.lookup("gold")) == 2
        assert index.lookup("ghostword") == []

    def test_lookup_all_conjunctive(self, repo):
        index = FullTextIndex.build(
            repo.container("/site/item/desc/#text"))
        assert len(index.lookup_all(["gold", "leaf"])) == 1
        assert index.lookup_all(["gold", "silver"]) == []
        assert index.lookup_all([]) == []

    def test_size_accounting(self, repo):
        index = FullTextIndex.build(
            repo.container("/site/item/desc/#text"))
        assert index.size_bytes() > 0


class TestIndexedAccessPath:
    def test_registered_index_used(self, repo):
        engine = QueryEngine(repo)
        engine.build_fulltext_index("/site/item/desc/#text")
        result = engine.execute(QUERY)
        assert result.items == ["i0", "i2"]
        # The access path shows up as a container access without a
        # per-record scan.
        assert result.stats.container_accesses >= 1

    def test_index_results_equal_plain_results(self, repo):
        plain = QueryEngine(repo)
        indexed = QueryEngine(repo)
        indexed.build_fulltext_index("/site/item/desc/#text")
        for needle in ("gold", "silver", "golden", "bowl gold",
                       "nothing"):
            query = ('for $i in /site/item where '
                     f'word-contains($i/desc/text(), "{needle}") '
                     "return $i/@id")
            assert indexed.execute(query).items == \
                plain.execute(query).items, needle

    def test_unindexed_container_falls_back(self, repo):
        engine = QueryEngine(repo)
        engine.build_fulltext_index("/site/item/desc/#text")
        result = engine.execute(
            'for $i in /site/item '
            'where word-contains($i/name/text(), "gold") '
            "return $i/@id")
        assert result.items == ["i0"]

"""Tests for the FLWOR ``order by`` clause."""

import pytest

from repro.baselines.galax import GalaxEngine
from repro.query.ast import FLWOR
from repro.query.engine import QueryEngine
from repro.query.parser import parse_query
from repro.storage.loader import load_document

DOC = """
<shop>
  <item><name>cherry</name><price>30</price><qty>2</qty></item>
  <item><name>apple</name><price>10</price><qty>5</qty></item>
  <item><name>banana</name><price>30</price><qty>1</qty></item>
  <item><name>date</name><price>5</price><qty>9</qty></item>
  <order>legacy element named order</order>
</shop>
"""


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(load_document(DOC))


class TestParsing:
    def test_order_by_parsed(self):
        ast = parse_query(
            "for $i in /shop/item order by $i/price/text() "
            "return $i/name/text()")
        assert isinstance(ast, FLWOR)
        assert len(ast.order) == 1
        assert not ast.order[0].descending

    def test_descending_and_multiple_keys(self):
        ast = parse_query(
            "for $i in /shop/item "
            "order by $i/price/text() descending, $i/name/text() "
            "ascending return $i")
        assert ast.order[0].descending
        assert not ast.order[1].descending

    def test_order_stays_a_plain_name_in_paths(self):
        ast = parse_query("/shop/order/text()")
        assert ast.steps[1].test == "order"

    def test_missing_return_rejected(self):
        from repro.errors import QuerySyntaxError
        with pytest.raises(QuerySyntaxError):
            parse_query("for $i in /a order by $i")


class TestEvaluation:
    def test_ascending(self, engine):
        result = engine.execute(
            "for $i in /shop/item order by $i/name/text() "
            "return $i/name/text()")
        assert result.items == ["apple", "banana", "cherry", "date"]

    def test_numeric_keys_sort_numerically(self, engine):
        result = engine.execute(
            "for $i in /shop/item order by $i/price/text() "
            "return $i/price/text()")
        assert result.items == ["5", "10", "30", "30"]

    def test_descending(self, engine):
        result = engine.execute(
            "for $i in /shop/item order by $i/price/text() descending "
            "return $i/name/text()")
        assert result.items[0] in ("cherry", "banana")
        assert result.items[-1] == "date"

    def test_secondary_key_breaks_ties(self, engine):
        result = engine.execute(
            "for $i in /shop/item order by $i/price/text() descending, "
            "$i/name/text() return $i/name/text()")
        assert result.items == ["banana", "cherry", "apple", "date"]

    def test_stable_for_equal_keys(self, engine):
        # Equal keys keep binding order (document order here).
        result = engine.execute(
            "for $i in /shop/item order by $i/price/text() "
            "return $i/name/text()")
        assert result.items.index("cherry") < \
            result.items.index("banana")

    def test_order_with_where(self, engine):
        result = engine.execute(
            "for $i in /shop/item where $i/price/text() >= 10 "
            "order by $i/qty/text() return $i/name/text()")
        assert result.items == ["banana", "cherry", "apple"]

    def test_galax_agrees(self, engine):
        queries = [
            "for $i in /shop/item order by $i/name/text() descending "
            "return $i/name/text()",
            "for $i in /shop/item order by $i/qty/text() "
            'return <r q="{$i/qty/text()}"/>',
            "for $i in /shop/item where $i/price/text() > 5 "
            "order by $i/price/text(), $i/name/text() descending "
            "return $i/name/text()",
        ]
        galax = GalaxEngine(DOC)
        for query in queries:
            assert engine.execute(query).to_xml() == \
                galax.execute_to_xml(query), query

    def test_empty_key_sorts_first(self, engine):
        result = engine.execute(
            "for $i in /shop/* order by $i/price/text() "
            "return $i/name/text()")
        # the <order> element has no price: it sorts before the items
        # and contributes no name.
        assert len(result.items) == 4

"""Unit tests for the batch-pull operator protocol (DESIGN.md §13).

``RecordBatch``/column semantics, the ``batches()``/``_rows()`` compat
contract on ``Operator``, per-batch telemetry attribution and the
per-operator batch-vs-row parity that backs the differential suite.
"""

from __future__ import annotations

import itertools
import warnings

import numpy as np
import pytest

from repro.obs import runtime
from repro.obs.telemetry import Telemetry
from repro.query.batch import (
    DEFAULT_BATCH_SIZE,
    ItemColumn,
    NodeColumn,
    RecordBatch,
    ValueColumn,
    batches_from_rows,
    rows_of_batches,
)
from repro.query.context import EvaluationStats, NodeItem
from repro.query.physical import (
    AttributeContent,
    ContAccess,
    ContScan,
    Decompress,
    Descendant,
    Distinct,
    HashJoin,
    MergeJoin,
    Operator,
    Parent,
    Project,
    Select,
    Sort,
    StructureSummaryAccess,
    TextContent,
)
from repro.storage.loader import load_document

DOC = """
<site>
  <people>
    <person id="p0"><name>Carol</name><age>45</age></person>
    <person id="p1"><name>Alice</name><age>31</age></person>
    <person id="p2"><name>Bob</name><age>27</age></person>
    <person id="p3"><name>Dave</name><age>31</age></person>
  </people>
  <sales>
    <sale buyer="p1"><total>10.5</total></sale>
    <sale buyer="p0"><total>20.25</total></sale>
    <sale buyer="p1"><total>7.75</total></sale>
  </sales>
</site>
"""

NAME_PATH = "/site/people/person/name/#text"
AGE_PATH = "/site/people/person/age/#text"
ID_PATH = "/site/people/person/@id"

SIZES = (1, 2, 7, 1024)


@pytest.fixture(scope="module")
def repo():
    return load_document(DOC)


# -- RecordBatch / column semantics -------------------------------------------

class TestRecordBatch:
    ROWS = [{"k": 1, "v": "a"}, {"k": 2, "v": "b"}, {"k": 1, "v": "c"}]

    def test_from_rows_to_rows_roundtrip(self):
        batch = RecordBatch.from_rows(self.ROWS)
        assert list(batch.to_rows()) == self.ROWS
        assert len(batch) == batch.raw_length == 3

    def test_from_rows_rejects_empty(self):
        with pytest.raises(ValueError):
            RecordBatch.from_rows([])

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RecordBatch({"a": ItemColumn([1, 2]),
                         "b": ItemColumn([1])})

    def test_filter_is_lazy_and_ands_masks(self):
        batch = RecordBatch.from_rows(self.ROWS)
        once = batch.filter(np.array([True, True, False]))
        assert once.raw_length == 3 and len(once) == 2
        twice = once.filter(np.array([False, True, True]))
        # raw rows survive; only the conjunction is valid.
        assert twice.raw_length == 3 and len(twice) == 1
        assert [r["v"] for r in twice.to_rows()] == ["b"]

    def test_compact_materializes_and_drops_mask(self):
        batch = RecordBatch.from_rows(self.ROWS).filter(
            np.array([True, False, True]))
        compacted = batch.compact()
        assert compacted.validity is None
        assert compacted.raw_length == 2
        assert [r["v"] for r in compacted.to_rows()] == ["a", "c"]

    def test_take_counts_valid_rows_only(self):
        batch = RecordBatch.from_rows(self.ROWS).filter(
            np.array([False, True, True]))
        taken = batch.take(np.array([1, 0, 1]))
        assert [r["v"] for r in taken.to_rows()] == ["c", "b", "c"]

    def test_slice_clamps(self):
        batch = RecordBatch.from_rows(self.ROWS)
        assert [r["v"] for r in batch.slice(1, 99).to_rows()] == \
            ["b", "c"]
        assert len(batch.slice(3, 5)) == 0

    def test_with_column_requires_compacted(self):
        batch = RecordBatch.from_rows(self.ROWS).filter(
            np.array([True, True, False]))
        with pytest.raises(ValueError):
            batch.with_column("x", ItemColumn([1, 2, 3]))
        grown = batch.compact().with_column("x", ItemColumn([7, 8]))
        assert [r["x"] for r in grown.to_rows()] == [7, 8]

    def test_merged_with_is_dict_merge(self):
        left = RecordBatch.from_rows([{"a": 1, "s": "l"}])
        right = RecordBatch.from_rows([{"b": 2, "s": "r"}])
        merged = left.merged_with(right)
        assert list(merged.to_rows()) == [{"a": 1, "s": "r", "b": 2}]

    def test_project_preserves_validity_and_raises_on_missing(self):
        batch = RecordBatch.from_rows(self.ROWS).filter(
            np.array([True, False, True]))
        projected = batch.project(["v"])
        assert [r for r in projected.to_rows()] == \
            [{"v": "a"}, {"v": "c"}]
        with pytest.raises(KeyError):
            batch.project(["ghost"])

    def test_concat_mixed_column_kinds_falls_back_to_items(self, repo):
        container = repo.container(NAME_PATH)
        value = RecordBatch(
            {"v": ValueColumn(container, np.array([0, 1]))})
        items = RecordBatch(
            {"v": ItemColumn(["x"])})
        merged = RecordBatch.concat([value, items])
        assert merged.raw_length == 3
        assert isinstance(merged.column("v"), ItemColumn)

    def test_batches_from_rows_roundtrip_all_sizes(self):
        rows = [{"i": i} for i in range(11)]
        for size in SIZES:
            batches = list(batches_from_rows(iter(rows), size))
            assert all(len(b) <= size for b in batches)
            assert list(rows_of_batches(iter(batches))) == rows


class TestColumns:
    def test_node_column_items(self):
        column = NodeColumn(np.array([3, 1]), doc="d.xml")
        assert column.item_at(0) == NodeItem(3, "d.xml")
        assert column.to_items() == [NodeItem(3, "d.xml"),
                                     NodeItem(1, "d.xml")]

    def test_value_column_items_match_scalar_records(self, repo):
        container = repo.container(NAME_PATH)
        column = ValueColumn(container, np.array([2, 0]))
        codec = container.codec
        decoded = [codec.decode(item.compressed)
                   for item in column.to_items()]
        records = container.as_arrays().records
        assert decoded == [codec.decode(records[2].compressed),
                           codec.decode(records[0].compressed)]

    def test_value_column_interval_mask_is_positional(self, repo):
        container = repo.container(NAME_PATH)
        column = ValueColumn(container, np.array([0, 3, 1, 2]))
        mask = column.interval_mask(1, 3)
        assert mask.tolist() == [False, False, True, True]

    def test_value_column_concat_rejects_mixed_containers(self, repo):
        left = ValueColumn(repo.container(NAME_PATH), np.array([0]))
        right = ValueColumn(repo.container(ID_PATH), np.array([0]))
        with pytest.raises(ValueError):
            ValueColumn.concat([left, right])


# -- Operator protocol compat --------------------------------------------------

class _RowsOnly(Operator):
    def __init__(self, rows):
        self._source = rows

    def _rows(self):
        return iter(self._source)


class _BatchesOnly(Operator):
    def __init__(self, rows):
        self._source = rows

    def _batches(self, size):
        return batches_from_rows(iter(self._source), size)


class _Neither(Operator):
    pass


class TestOperatorProtocol:
    ROWS = [{"i": i} for i in range(5)]

    def test_rows_only_operator_batches_with_deprecation(self):
        op = _RowsOnly(self.ROWS)
        with pytest.warns(DeprecationWarning, match="_RowsOnly"):
            batches = list(op.batches(2))
        assert list(rows_of_batches(iter(batches))) == self.ROWS

    def test_batches_only_operator_iterates_as_rows(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert _BatchesOnly(self.ROWS).rows() == self.ROWS

    def test_compat_batches_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            batches = list(_RowsOnly(self.ROWS)._compat_batches(2))
        assert list(rows_of_batches(iter(batches))) == self.ROWS

    def test_neither_protocol_raises(self):
        with pytest.raises(NotImplementedError):
            list(_Neither().batches())
        with pytest.raises(NotImplementedError):
            list(_Neither())

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            _BatchesOnly(self.ROWS).batches(0)

    def test_default_batch_size(self):
        batches = list(_BatchesOnly(
            [{"i": i} for i in range(DEFAULT_BATCH_SIZE + 1)]).batches())
        assert [b.raw_length for b in batches] == \
            [DEFAULT_BATCH_SIZE, 1]


# -- telemetry attribution -----------------------------------------------------

class TestBatchTelemetry:
    def test_batch_path_reports_same_row_counts_plus_batches(self, repo):
        row_t = Telemetry(enabled=True)
        with runtime.activated(row_t):
            rows = list(ContScan(repo, NAME_PATH, "id", "v"))
        batch_t = Telemetry(enabled=True)
        with runtime.activated(batch_t):
            batches = list(
                ContScan(repo, NAME_PATH, "id", "v").batches(2))
        row_counters = row_t.metrics.counters()
        batch_counters = batch_t.metrics.counters()
        assert row_counters["op.ContScan.rows"] == len(rows) == 4
        assert batch_counters["op.ContScan.rows"] == 4
        assert batch_counters["op.ContScan.batches"] == len(batches) == 2
        # identical span series: EXPLAIN ANALYZE reads either run.
        assert "ContScan" in batch_t.operator_profile()

    def test_batch_path_mirrors_container_access_counters(self, repo):
        row_t = Telemetry(enabled=True)
        with runtime.activated(row_t):
            list(ContScan(repo, NAME_PATH, "id", "v"))
        batch_t = Telemetry(enabled=True)
        with runtime.activated(batch_t):
            list(ContScan(repo, NAME_PATH, "id", "v").batches(2))
        key = "container.scans"
        assert batch_t.metrics.counters().get(key) == \
            row_t.metrics.counters().get(key) == 1


# -- per-operator batch-vs-row parity -----------------------------------------

def _decode_all(rows, repo):
    """Canonical form of an output row list for comparison."""
    stats = EvaluationStats()
    out = []
    for row in rows:
        canonical = {}
        for name, value in row.items():
            if hasattr(value, "decode") and hasattr(value, "compressed"):
                canonical[name] = value.decode(stats)
            else:
                canonical[name] = value
        out.append(canonical)
    return out


def _parity(build, repo):
    """Assert rows() == flattened batches() at every tested size."""
    expected = _decode_all(build().rows(), repo)
    for size in SIZES:
        got = _decode_all(rows_of_batches(build().batches(size)), repo)
        assert got == expected, f"batch size {size} diverged"
    return expected


class TestOperatorParity:
    def test_cont_scan(self, repo):
        out = _parity(
            lambda: ContScan(repo, NAME_PATH, "id", "v"), repo)
        assert [r["v"] for r in out] == \
            ["Alice", "Bob", "Carol", "Dave"]

    def test_cont_access_string_interval(self, repo):
        out = _parity(
            lambda: ContAccess(repo, NAME_PATH, "id", "v",
                               low="Alice", high="Carol"), repo)
        assert [r["v"] for r in out] == ["Alice", "Bob", "Carol"]

    def test_cont_access_numeric_interval(self, repo):
        out = _parity(
            lambda: ContAccess(repo, AGE_PATH, "id", "v",
                               low=28, high=50), repo)
        assert [r["v"] for r in out] == ["31", "31", "45"]

    def test_structure_summary_access(self, repo):
        _parity(lambda: StructureSummaryAccess(
            repo, [("descendant", "person")], "n"), repo)

    def test_parent(self, repo):
        def build():
            persons = StructureSummaryAccess(
                repo, [("descendant", "person")], "n")
            return Parent(persons, repo, "n", "up")
        out = _parity(build, repo)
        assert {repo.tag_of(r["up"].node_id) for r in out} == {"people"}

    def test_parent_drops_root_in_batches(self, repo):
        for size in SIZES:
            rows = list(rows_of_batches(
                Parent([{"n": NodeItem(0)}], repo, "n", "up")
                .batches(size)))
            assert rows == []

    def test_descendant(self, repo):
        _parity(lambda: Descendant([{"n": NodeItem(0)}], repo,
                                   "n", "d", tag="total"), repo)

    def test_text_content(self, repo):
        def build():
            persons = StructureSummaryAccess(
                repo, [("descendant", "name")], "n")
            return TextContent(persons, repo, "n", "text", NAME_PATH)
        out = _parity(build, repo)
        assert sorted(r["text"] for r in out) == \
            ["Alice", "Bob", "Carol", "Dave"]

    def test_attribute_content(self, repo):
        def build():
            persons = StructureSummaryAccess(
                repo, [("descendant", "person")], "n")
            return AttributeContent(persons, repo, "n", "id", ID_PATH)
        _parity(build, repo)

    def test_select_row_predicate(self, repo):
        rows = [{"k": i % 3} for i in range(10)]
        _parity(lambda: Select(list(rows), lambda r: r["k"] == 1), repo)

    def test_select_vectorized_interval(self, repo):
        container = repo.container(NAME_PATH)
        bounds = container.interval_positions(
            "Alice", "Bob", True, True)

        def build():
            scan = ContScan(repo, NAME_PATH, "id", "v")
            return Select(scan,
                          lambda r: "Alice" <= r["v"].decode(
                              EvaluationStats()) <= "Bob",
                          column="v", predicate_kind="ineq",
                          interval=("Alice", "Bob", True, True))
        out = _parity(build, repo)
        assert [r["v"] for r in out] == ["Alice", "Bob"]
        assert bounds == (0, 2)

    def test_project(self, repo):
        rows = [{"a": 1, "b": 2}, {"a": 3, "b": 4}]
        _parity(lambda: Project(list(rows), ["b"]), repo)

    def test_hash_join(self, repo):
        left = [{"l": i} for i in (1, 2, 3, 2)]
        right = [{"r": 2, "t": "x"}, {"r": 2, "t": "y"}, {"r": 3, "t": "z"}]
        _parity(lambda: HashJoin(list(left), list(right),
                                 lambda r: r["l"], lambda r: r["r"]),
                repo)

    def test_merge_join_duplicate_runs(self, repo):
        left = [{"l": k} for k in (1, 2, 2, 5, 5, 5)]
        right = [{"r": k, "i": i}
                 for i, k in enumerate((2, 2, 5, 7))]
        out = _parity(lambda: MergeJoin(
            list(left), list(right),
            lambda r: r["l"], lambda r: r["r"]), repo)
        assert len(out) == 2 * 2 + 3 * 1

    def test_merge_join_run_spanning_batches(self, repo):
        # equal-key runs longer than the batch size must be stitched.
        left = [{"l": 4}] * 9 + [{"l": 6}]
        right = [{"r": 4, "i": i} for i in range(5)] + [{"r": 6, "i": 9}]
        out = _parity(lambda: MergeJoin(
            list(left), list(right),
            lambda r: r["l"], lambda r: r["r"]), repo)
        assert len(out) == 9 * 5 + 1

    def test_distinct(self, repo):
        rows = [{"k": i % 4} for i in range(13)]
        _parity(lambda: Distinct(list(rows), lambda r: r["k"]), repo)

    def test_sort(self, repo):
        rows = [{"k": i} for i in (5, 2, 9, 1)]
        _parity(lambda: Sort(list(rows), lambda r: r["k"]), repo)

    def test_decompress(self, repo):
        def build():
            scan = ContScan(repo, NAME_PATH, "id", "v")
            return Decompress(scan, ["v"], EvaluationStats())
        out = _parity(build, repo)
        assert [r["v"] for r in out] == \
            ["Alice", "Bob", "Carol", "Dave"]


class TestMergeJoinStreaming:
    """Satellite: MergeJoin must not materialize both inputs."""

    @staticmethod
    def _tracking(rows):
        state = {"pulled": 0}

        def gen():
            for row in rows:
                state["pulled"] += 1
                yield row
        return gen(), state

    def test_row_path_streams_probe_side(self):
        total = 10_000
        left, state = self._tracking(
            {"l": i} for i in range(total))
        right = [{"r": i} for i in range(0, total, 500)]
        join = iter(MergeJoin(left, right,
                              lambda r: r["l"], lambda r: r["r"]))
        first = next(join)
        assert first["r"] == first["l"] == 0
        # the probe side was pulled on demand, not list()-ed.
        assert state["pulled"] < total // 10

    def test_batch_path_streams_both_sides(self):
        total = 10_000
        left, lstate = self._tracking(
            {"l": i} for i in range(total))
        right, rstate = self._tracking(
            {"r": i} for i in range(total))
        join = MergeJoin(left, right,
                         lambda r: r["l"], lambda r: r["r"])
        first_batch = next(join.batches(64))
        assert len(first_batch) > 0
        assert lstate["pulled"] < total // 10
        assert rstate["pulled"] < total // 10

    def test_full_equijoin_result_matches(self):
        left = [{"l": i // 2} for i in range(10)]
        right = [{"r": i} for i in range(5)]
        row_out = [(r["l"], r["r"]) for r in
                   MergeJoin(list(left), list(right),
                             lambda r: r["l"], lambda r: r["r"]).rows()]
        batch_out = [(r["l"], r["r"]) for r in rows_of_batches(
            MergeJoin(list(left), list(right),
                      lambda r: r["l"], lambda r: r["r"]).batches(3))]
        assert batch_out == row_out
        assert len(row_out) == 10


class TestBlobFallback:
    def test_blob_container_scan_falls_back_to_rows(self):
        doc = "<r>" + "".join(
            f"<t>{'x' * (i + 1)}</t>" for i in range(5)) + "</r>"
        repo = load_document(doc, default_string_codec="zlib")
        path = "/r/t/#text"
        container = repo.container(path)
        if not container.is_blob:
            pytest.skip("loader does not build blob containers here")
        assert container.as_arrays().records is None
        rows = list(rows_of_batches(
            ContScan(repo, path, "id", "v").batches(2)))
        assert len(rows) == 5

    def test_value_column_rejects_blob(self):
        doc = "<r><t>aa</t><t>bb</t></r>"
        repo = load_document(doc, default_string_codec="zlib")
        container = repo.container("/r/t/#text")
        if not container.is_blob:
            pytest.skip("loader does not build blob containers here")
        with pytest.raises(ValueError):
            ValueColumn(container, np.array([0]))

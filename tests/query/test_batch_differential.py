"""Differential suite: batch-vs-row parity across the query surface.

The batch execution engine must be observationally identical to the
legacy row path: every XMark benchmark query runs at batch sizes
{1, 2, 7, 1024} (1 = legacy row path; 2 and 7 stress batch-boundary
handling; 1024 is the default) and must produce byte-identical
serialized results *and* identical Tier-A plan-verifier diagnostics.
The `repro verify` engine oracle runs the same way — the compressed
path pinned to each width against the decompress-first reference.
"""

from __future__ import annotations

import pytest

from repro.query.engine import QueryEngine
from repro.query.options import ExecutionOptions
from repro.service.session import Database, Session
from repro.storage.loader import load_document
from repro.verify.engine_oracle import run_engine_oracle
from repro.xmark.generator import generate_xmark
from repro.xmark.queries import XMARK_QUERIES, query_text

SIZES = (1, 2, 7, 1024)


@pytest.fixture(scope="module")
def repo():
    return load_document(generate_xmark(factor=0.02, seed=7))


def _run(repo, query: str, batch_size: int):
    engine = QueryEngine(repo)
    result = engine.execute(
        query, ExecutionOptions(batch_size=batch_size))
    diagnostics = [d.to_dict() for d in result.telemetry.diagnostics]
    return result.to_xml(), diagnostics


class TestXMarkBatchParity:
    @pytest.mark.parametrize("query_id", sorted(XMARK_QUERIES))
    def test_identical_results_at_every_batch_size(self, repo,
                                                   query_id):
        query = query_text(query_id)
        row_xml, row_diagnostics = _run(repo, query, batch_size=1)
        for size in SIZES[1:]:
            xml, diagnostics = _run(repo, query, batch_size=size)
            assert xml == row_xml, \
                f"{query_id} diverged at batch size {size}"
            assert diagnostics == row_diagnostics, \
                f"{query_id} Tier-A diagnostics changed at size {size}"


class TestSessionBatchSizeThreading:
    DOC = ("<r><p><v>5</v></p><p><v>11</v></p><p><v>2</v></p>"
           "<p><v>7</v></p></r>")
    QUERY = ("for $p in /r/p where $p/v/text() >= 5 "
             "return $p/v/text()")

    def test_session_default_applies(self):
        repo = load_document(self.DOC)
        expected = Session(repo).execute(self.QUERY).to_xml()
        for size in SIZES:
            session = Session(repo, batch_size=size)
            assert session.execute(self.QUERY).to_xml() == expected

    def test_options_override_session_default(self):
        repo = load_document(self.DOC)
        session = Session(repo, batch_size=1024)
        row = session.execute(
            self.QUERY, ExecutionOptions(batch_size=1))
        assert row.to_xml() == Session(repo).execute(
            self.QUERY).to_xml()

    def test_database_default_reaches_sessions(self):
        repo = load_document(self.DOC)
        database = Database(repo, batch_size=7)
        with database.session() as session:
            assert session.batch_size == 7
            assert session.execute(self.QUERY).to_xml() == \
                Session(repo).execute(self.QUERY).to_xml()

    def test_prepared_query_inherits_session_default(self):
        repo = load_document(self.DOC)
        session = Session(repo, batch_size=2)
        prepared = session.prepare(self.QUERY)
        assert prepared.run().to_xml() == \
            Session(repo).execute(self.QUERY).to_xml()

    def test_invalid_batch_size_rejected(self):
        repo = load_document(self.DOC)
        with pytest.raises(ValueError):
            Session(repo, batch_size=0)
        with pytest.raises(ValueError):
            ExecutionOptions(batch_size=-3)


class TestEngineOracleAtBatchSizes:
    """`repro verify`'s engine oracle, pinned to each batch width."""

    @pytest.mark.parametrize("batch_size", [1, 2, 7, 1024])
    def test_oracle_green(self, batch_size):
        report = run_engine_oracle(seed=3, docs=2, queries=6, scale=4,
                                   batch_size=batch_size)
        assert report.ok, report.render_text()
        assert report.checks_run > 0

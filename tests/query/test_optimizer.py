"""Tests for query analysis and access-path selection."""

from repro.query.ast import Comparison, NumberLiteral, StringLiteral
from repro.query.optimizer import (
    context_free,
    find_join_plan,
    find_range_plan,
    flatten_conjuncts,
    free_vars,
    is_absolute_simple_path,
)
from repro.query.parser import parse_query


def where_of(query: str):
    return parse_query(query).where


class TestFreeVars:
    def test_simple(self):
        expr = parse_query("$a/name/text()")
        assert free_vars(expr) == {"a"}

    def test_flwor_binds(self):
        expr = parse_query("for $x in /a/b return $x/c")
        assert free_vars(expr) == frozenset()

    def test_flwor_outer_reference(self):
        expr = parse_query("for $x in /a/b where $x/@id = $y return $x")
        assert free_vars(expr) == {"y"}

    def test_predicate_vars_counted(self):
        expr = parse_query("/a/b[@id = $z]")
        assert free_vars(expr) == {"z"}

    def test_constructor_vars(self):
        expr = parse_query('<out a="{$p}">{$q}</out>')
        assert free_vars(expr) == {"p", "q"}

    def test_none(self):
        assert free_vars(None) == frozenset()


class TestFlattenConjuncts:
    def test_nested_ands(self):
        where = where_of(
            "for $x in /a where 1 = 1 and 2 = 2 and 3 = 3 return $x")
        assert len(flatten_conjuncts(where)) == 3

    def test_or_not_split(self):
        where = where_of(
            "for $x in /a where 1 = 1 or 2 = 2 return $x")
        assert len(flatten_conjuncts(where)) == 1

    def test_none(self):
        assert flatten_conjuncts(None) == []


class TestJoinPlans:
    def test_classic_join(self):
        where = where_of(
            "for $t in /s/t where $t/buyer/@person = $p/@id return $t")
        plan = find_join_plan(where, "t", {"p"})
        assert plan is not None
        assert free_vars(plan.build_expr) == {"t"}
        assert free_vars(plan.probe_expr) == {"p"}

    def test_swapped_sides(self):
        where = where_of(
            "for $t in /s/t where $p/@id = $t/buyer/@person return $t")
        plan = find_join_plan(where, "t", {"p"})
        assert plan is not None
        assert free_vars(plan.build_expr) == {"t"}

    def test_constant_comparison_is_not_a_join(self):
        where = where_of(
            'for $t in /s/t where $t/@id = "x" return $t')
        assert find_join_plan(where, "t", set()) is None

    def test_inequality_not_hash_joinable(self):
        where = where_of(
            "for $t in /s/t where $t/@id < $p/@id return $t")
        assert find_join_plan(where, "t", {"p"}) is None

    def test_unbound_probe_rejected(self):
        where = where_of(
            "for $t in /s/t where $t/@id = $unbound/@id return $t")
        assert find_join_plan(where, "t", set()) is None


class TestRangePlans:
    def test_equality(self):
        where = where_of(
            'for $v in /a/b where $v/name/text() = "x" return $v')
        plan = find_range_plan(where, "v")
        assert plan is not None
        assert (plan.low, plan.high) == ("x", "x")
        assert plan.ascend == 1
        assert plan.constant_kind == "string"

    def test_attribute_no_ascend(self):
        where = where_of(
            'for $v in /a/b where $v/@id = "x" return $v')
        plan = find_range_plan(where, "v")
        assert plan is not None and plan.ascend == 0

    def test_inequality_bounds(self):
        for op, low, high, li, hi in (
                ("<", None, "m", True, False),
                ("<=", None, "m", True, True),
                (">", "m", None, False, True),
                (">=", "m", None, True, True)):
            where = where_of(
                f'for $v in /a/b where $v/c/text() {op} "m" return $v')
            plan = find_range_plan(where, "v")
            assert plan is not None, op
            assert (plan.low, plan.high) == (low, high)
            assert (plan.low_inclusive, plan.high_inclusive) == (li, hi)

    def test_swapped_constant_side_flips(self):
        where = where_of(
            'for $v in /a/b where "m" < $v/c/text() return $v')
        plan = find_range_plan(where, "v")
        assert plan is not None
        assert plan.low == "m" and plan.high is None

    def test_numeric_constant_kind(self):
        where = where_of(
            "for $v in /a/b where $v/c/text() > 40 return $v")
        plan = find_range_plan(where, "v")
        assert plan is not None and plan.constant_kind == "number"

    def test_descendant_path_rejected(self):
        where = where_of(
            'for $v in /a/b where $v//c/text() = "x" return $v')
        assert find_range_plan(where, "v") is None

    def test_predicated_path_rejected(self):
        where = where_of(
            'for $v in /a/b where $v/c[2]/text() = "x" return $v')
        assert find_range_plan(where, "v") is None

    def test_element_terminal_rejected(self):
        # $v/c atomizes the node; that is not a root-to-leaf container.
        where = where_of(
            'for $v in /a/b where $v/c = "x" return $v')
        assert find_range_plan(where, "v") is None

    def test_join_comparison_rejected(self):
        where = where_of(
            "for $v in /a/b where $v/c/text() = $w/d/text() return $v")
        assert find_range_plan(where, "v") is None


class TestPathClassifiers:
    def test_absolute_simple(self):
        assert is_absolute_simple_path(parse_query("/a/b//c"))

    def test_relative_not_absolute(self):
        assert not is_absolute_simple_path(parse_query("$x/a"))

    def test_predicates_disqualify(self):
        assert not is_absolute_simple_path(parse_query("/a/b[1]"))

    def test_literal_not_a_path(self):
        assert not is_absolute_simple_path(StringLiteral("x"))

    def test_context_free(self):
        assert context_free(parse_query("/a/b"))
        assert context_free(parse_query("for $x in /a return $x"))
        assert not context_free(parse_query("/a/b[@id = 'x']")
                                .steps[1].predicates[0])

    def test_context_item_detected(self):
        predicate = parse_query("/a/b[c > 1]").steps[1].predicates[0]
        assert isinstance(predicate, Comparison)
        assert not context_free(predicate)

    def test_literals_context_free(self):
        assert context_free(NumberLiteral(1.0))


class TestFullTextPlans:
    def test_classified(self):
        from repro.query.optimizer import find_fulltext_plan
        where = where_of(
            'for $v in /a/b where word-contains($v/d/text(), "gold") '
            "return $v")
        plan = find_fulltext_plan(where, "v")
        assert plan is not None
        assert plan.words == ("gold",)
        assert plan.ascend == 1

    def test_multi_word_needle_split(self):
        from repro.query.optimizer import find_fulltext_plan
        where = where_of(
            'for $v in /a/b where word-contains($v/d/text(), '
            '"gold leaf") return $v')
        plan = find_fulltext_plan(where, "v")
        assert plan is not None and plan.words == ("gold", "leaf")

    def test_non_literal_needle_rejected(self):
        from repro.query.optimizer import find_fulltext_plan
        where = where_of(
            "for $v in /a/b where word-contains($v/d/text(), $w) "
            "return $v")
        assert find_fulltext_plan(where, "v") is None

    def test_contains_not_indexable(self):
        from repro.query.optimizer import find_fulltext_plan
        where = where_of(
            'for $v in /a/b where contains($v/d/text(), "gold") '
            "return $v")
        assert find_fulltext_plan(where, "v") is None

    def test_empty_needle_rejected(self):
        from repro.query.optimizer import find_fulltext_plan
        where = where_of(
            'for $v in /a/b where word-contains($v/d/text(), "  ") '
            "return $v")
        assert find_fulltext_plan(where, "v") is None


class TestFlip:
    """`_flip` mirrors a comparison when the constant is on the left."""

    def test_every_operator_flips(self):
        from repro.query.optimizer import _flip
        assert _flip("=") == "="
        assert _flip("!=") == "!="
        assert _flip("<") == ">"
        assert _flip("<=") == ">="
        assert _flip(">") == "<"
        assert _flip(">=") == "<="

    def test_flip_is_an_involution(self):
        from repro.query.optimizer import _flip
        for op in ("=", "!=", "<", "<=", ">", ">="):
            assert _flip(_flip(op)) == op

    def test_flipped_inequality_bounds(self):
        """`const op path` must produce the mirrored interval of
        `path flipped-op const` for every inequality."""
        for op, low, high, li, hi in (
                ("<", "m", None, False, True),   # "m" < $v/c
                ("<=", "m", None, True, True),
                (">", None, "m", True, False),   # "m" > $v/c
                (">=", None, "m", True, True)):
            where = where_of(
                f'for $v in /a/b where "m" {op} $v/c/text() return $v')
            plan = find_range_plan(where, "v")
            assert plan is not None, op
            assert (plan.low, plan.high) == (low, high), op
            assert (plan.low_inclusive, plan.high_inclusive) == \
                (li, hi), op

    def test_flipped_join_probe_sides(self):
        """find_join_plan puts build/probe right regardless of which
        side mentions the clause variable."""
        left = where_of("for $v in /a/b where $v/c = $w/d return $v")
        right = where_of("for $v in /a/b where $w/d = $v/c return $v")
        for where in (left, right):
            plan = find_join_plan(where, "v", {"w"})
            assert plan is not None
            assert free_vars(plan.build_expr) == {"v"}
            assert free_vars(plan.probe_expr) == {"w"}


class TestVerifierAgreement:
    """The static verifier classifies flipped comparisons exactly as
    the optimizer evaluates them (satellite check of the lint issue)."""

    def _repo(self, codec: str):
        from repro.partitioning.config import (
            CompressionConfiguration,
            ContainerGroup,
        )
        from repro.storage.loader import load_document
        xml = "<a>" + "".join(
            f"<b><c>v{i:02d}</c></b>" for i in range(8)) + "</a>"
        configuration = CompressionConfiguration(groups=[
            ContainerGroup(("/a/b/c/#text",), codec)])
        return load_document(xml, configuration=configuration)

    def test_flipped_ineq_on_order_preserving_codec_clean(self):
        from repro.lint.compile import verify_query
        repo = self._repo("alm")
        diagnostics = verify_query(parse_query(
            'for $v in /a/b where "v03" < $v/c/text() return $v'),
            repo)
        assert diagnostics == []

    def test_flipped_ineq_on_order_agnostic_codec_degrades(self):
        """huffman cannot answer the flipped `<` compressed: the sketch
        decompresses first, so no error — only the pivot warning."""
        from repro.lint.compile import verify_query
        repo = self._repo("huffman")
        diagnostics = verify_query(parse_query(
            'for $v in /a/b where "v03" < $v/c/text() return $v'),
            repo)
        assert [d.severity for d in diagnostics] == ["warning"]
        assert [d.rule for d in diagnostics] == \
            ["plan.interval-decompressing"]

    def test_flipped_and_direct_forms_agree(self):
        from repro.lint.compile import verify_query
        repo = self._repo("hutucker")
        direct = verify_query(parse_query(
            'for $v in /a/b where $v/c/text() > "v03" return $v'),
            repo)
        flipped = verify_query(parse_query(
            'for $v in /a/b where "v03" < $v/c/text() return $v'),
            repo)
        assert [d.rule for d in direct] == [d.rule for d in flipped]
        assert direct == flipped == []

"""Tests for compressed result shipping."""

import pytest

from repro.query.engine import QueryEngine
from repro.query.shipping import receive, ship
from repro.storage.loader import load_document
from repro.xmark.generator import generate_xmark


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(load_document(generate_xmark(0.01, seed=12)))


class TestShipReceive:
    def test_text_values_roundtrip(self, engine):
        result = engine.execute("/site/people/person/name/text()")
        assert receive(ship(result)) == result.items

    def test_numbers_and_booleans(self, engine):
        result = engine.execute("count(//person)")
        assert receive(ship(result)) == result.items
        result = engine.execute("empty(//nothing)")
        assert receive(ship(result)) == result.items

    def test_constructed_elements_roundtrip(self, engine):
        result = engine.execute(
            "for $p in /site/people/person[1] "
            'return <hit id="{$p/@id}">{$p/name/text()}</hit>')
        (received,) = receive(ship(result))
        assert received.startswith('<hit id="person0">')

    def test_node_results_materialize(self, engine):
        result = engine.execute('/site/people/person[1]/name')
        (received,) = receive(ship(result))
        assert received.startswith("<name>")

    def test_empty_result(self, engine):
        result = engine.execute("/site/nothing")
        assert receive(ship(result)) == []


class TestBandwidth:
    def test_compressed_beats_plain_serialization(self, engine):
        """The §1 claim: shipping compressed results saves bandwidth.

        Description texts are large and highly compressible; the
        shipped payload (code bits + one ALM model) must undercut the
        decompressed text.
        """
        result = engine.execute("//description/text/text()")
        payload = ship(result)
        plain = result.to_xml().encode("utf-8")
        assert len(payload) < 0.7 * len(plain)
        assert receive(payload) == result.items

    def test_model_shipped_once(self, engine):
        """Many values from one container share one shipped model."""
        result = engine.execute("/site/people/person/name/text()")
        single = engine.execute("/site/people/person[1]/name/text()")
        many_payload = len(ship(result))
        one_payload = len(ship(single))
        values = len(result.items)
        # Per-extra-value marginal cost must be far below the model
        # size (i.e. the model is not repeated per value).
        marginal = (many_payload - one_payload) / max(values - 1, 1)
        assert marginal < 40


class TestResultShipMethod:
    def test_queryresult_ship(self, engine):
        result = engine.execute("/site/people/person/name/text()")
        assert receive(result.ship()) == result.items

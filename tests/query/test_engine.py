"""End-to-end tests of the query engine over a compressed repository."""

import pytest

from repro.errors import QueryError
from repro.query.engine import QueryEngine
from repro.storage.loader import load_document

DOC = """
<site>
  <people>
    <person id="person0"><name>Alice</name><age>31</age>
      <city>Paris</city></person>
    <person id="person1"><name>Bob</name><age>27</age>
      <city>Lyon</city></person>
    <person id="person2"><name>Carol</name><age>45</age>
      <city>Paris</city></person>
  </people>
  <auctions>
    <auction id="a0"><buyer person="person1"/><price>10</price></auction>
    <auction id="a1"><buyer person="person0"/><price>55</price></auction>
    <auction id="a2"><buyer person="person1"/><price>7</price></auction>
  </auctions>
</site>
"""


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(load_document(DOC))


class TestPaths:
    def test_absolute_child_path(self, engine):
        result = engine.execute("/site/people/person/name/text()")
        assert result.items == ["Alice", "Bob", "Carol"]

    def test_descendant_path(self, engine):
        result = engine.execute("//name/text()")
        assert result.items == ["Alice", "Bob", "Carol"]

    def test_attribute_path(self, engine):
        result = engine.execute("/site/people/person/@id")
        assert result.items == ["person0", "person1", "person2"]

    def test_wildcard(self, engine):
        result = engine.execute("/site/*")
        xml = result.to_xml()
        assert "<people>" in xml and "<auctions>" in xml

    def test_document_function_root(self, engine):
        result = engine.execute(
            'document("x.xml")/site/people/person/name/text()')
        assert result.items == ["Alice", "Bob", "Carol"]

    def test_missing_tag_empty(self, engine):
        assert engine.execute("/site/nothing").items == []

    def test_summary_access_used(self, engine):
        result = engine.execute("/site/people/person")
        assert result.stats.summary_accesses >= 1


class TestPredicates:
    def test_value_predicate(self, engine):
        result = engine.execute(
            '/site/people/person[name = "Bob"]/@id')
        assert result.items == ["person1"]

    def test_attribute_predicate(self, engine):
        result = engine.execute(
            '/site/people/person[@id = "person2"]/name/text()')
        assert result.items == ["Carol"]

    def test_positional_predicate(self, engine):
        result = engine.execute("/site/people/person[2]/name/text()")
        assert result.items == ["Bob"]

    def test_numeric_comparison(self, engine):
        result = engine.execute(
            "/site/people/person[age > 30]/name/text()")
        assert result.items == ["Alice", "Carol"]

    def test_contains(self, engine):
        result = engine.execute(
            'for $p in /site/people/person '
            'where contains($p/city/text(), "ari") '
            'return $p/name/text()')
        assert result.items == ["Alice", "Carol"]


class TestFLWOR:
    def test_basic_for(self, engine):
        result = engine.execute(
            "for $p in /site/people/person return $p/name/text()")
        assert result.items == ["Alice", "Bob", "Carol"]

    def test_where_filters(self, engine):
        result = engine.execute(
            'for $p in /site/people/person where $p/age/text() >= 31 '
            'return $p/name/text()')
        assert result.items == ["Alice", "Carol"]

    def test_let_binding(self, engine):
        result = engine.execute(
            "for $p in /site/people/person let $n := $p/name/text() "
            'where $p/city/text() = "Lyon" return $n')
        assert result.items == ["Bob"]

    def test_join_two_vars(self, engine):
        result = engine.execute(
            "for $p in /site/people/person, "
            "$a in /site/auctions/auction "
            "where $a/buyer/@person = $p/@id "
            "return $p/name/text()")
        assert sorted(result.items) == ["Alice", "Bob", "Bob"]

    def test_join_uses_hash_index(self, engine):
        result = engine.execute(
            "for $p in /site/people/person, "
            "$a in /site/auctions/auction "
            "where $a/buyer/@person = $p/@id "
            "return $a/price/text()")
        assert result.stats.hash_joins >= 1

    def test_nested_flwor_count(self, engine):
        result = engine.execute(
            "for $p in /site/people/person "
            "let $a := for $t in /site/auctions/auction "
            "where $t/buyer/@person = $p/@id return $t "
            "return count($a)")
        assert result.items == [1.0, 2.0, 0.0]

    def test_aggregates(self, engine):
        result = engine.execute(
            "sum(for $a in /site/auctions/auction "
            "return number($a/price/text()))")
        assert result.items == [72.0]

    def test_avg_min_max(self, engine):
        assert engine.execute(
            "avg(/site/auctions/auction/price/text())").items == [24.0]
        assert engine.execute(
            "min(/site/auctions/auction/price/text())").items == [7.0]
        assert engine.execute(
            "max(/site/auctions/auction/price/text())").items == [55.0]


class TestConstructors:
    def test_simple_construction(self, engine):
        result = engine.execute(
            'for $p in /site/people/person '
            'where $p/@id = "person0" '
            'return <out name="{$p/name/text()}">{$p/age/text()}</out>')
        assert result.to_xml() == '<out name="Alice">31</out>'

    def test_node_materialization(self, engine):
        result = engine.execute(
            '/site/people/person[@id = "person1"]')
        xml = result.to_xml()
        assert xml.startswith('<person id="person1">')
        assert "<name>Bob</name>" in xml

    def test_nested_constructors(self, engine):
        result = engine.execute(
            "<all>{for $p in /site/people/person "
            "return <n>{$p/name/text()}</n>}</all>")
        assert result.to_xml() == \
            "<all><n>Alice</n><n>Bob</n><n>Carol</n></all>"


class TestCompressedDomain:
    def test_equality_stays_compressed(self, engine):
        result = engine.execute(
            'for $p in /site/people/person '
            'where $p/city/text() = "Paris" return $p/@id')
        assert result.items == ["person0", "person2"]

    def test_inequality_stays_compressed_with_alm(self, engine):
        result = engine.execute(
            'for $p in /site/people/person '
            'where $p/name/text() < "Bob" return $p/name/text()')
        assert result.items == ["Alice"]
        # The filter itself ran compressed (decompressions only for the
        # final result serialization).
        assert result.stats.compressed_comparisons >= 1

    def test_range_plan_uses_container_access(self, engine):
        result = engine.execute(
            'for $p in /site/people/person '
            'where $p/city/text() = "Paris" return $p/@id')
        assert result.stats.container_accesses >= 1

    def test_numeric_range_on_typed_container(self, engine):
        result = engine.execute(
            "for $a in /site/auctions/auction "
            "where $a/price/text() > 9 return $a/@id")
        assert result.items == ["a0", "a1"]


class TestErrors:
    def test_unbound_variable(self, engine):
        with pytest.raises(QueryError):
            engine.execute("$ghost")

    def test_context_without_focus(self, engine):
        with pytest.raises(QueryError):
            engine.execute("@id = 'x'")


class TestStats:
    def test_result_length(self, engine):
        assert len(engine.execute("/site/people/person")) == 3

    def test_values_serializes_elements(self, engine):
        values = engine.execute("<a/>").values()
        assert values == ["<a/>"]

"""Tests for the structural-join extension (3-valued IDs)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.structural import (
    StructuralJoin,
    navigation_pairs,
    structural_pairs,
)
from repro.query.context import NodeItem
from repro.storage.loader import load_document
from repro.xmark.generator import generate_xmark

DOC = """
<site>
  <regions>
    <europe><item id="i0"><name>a</name></item>
            <item id="i1"><name>b</name></item></europe>
    <asia><item id="i2"><name>c</name></item></asia>
  </regions>
  <people><person id="p0"><name>x</name></person></people>
</site>
"""


@pytest.fixture(scope="module")
def repo():
    return load_document(DOC)


def extent(repo, *steps):
    nodes = repo.summary.resolve(list(steps))
    return sorted({i for n in nodes for i in n.extent})


class TestStructuralJoin:
    def test_descendant_pairs(self, repo):
        regions = extent(repo, ("descendant", "europe"))
        names = extent(repo, ("descendant", "name"))
        pairs = structural_pairs(repo.structure, regions, names)
        # europe contains the two item names (not asia's, not person's).
        assert len(pairs) == 2

    def test_child_axis(self, repo):
        items = extent(repo, ("descendant", "item"))
        names = extent(repo, ("descendant", "name"))
        pairs = structural_pairs(repo.structure, items, names,
                                 axis="child")
        assert len(pairs) == 3
        for ancestor, descendant in pairs:
            assert repo.structure.parent_of(descendant) == ancestor

    def test_child_axis_excludes_grandchildren(self, repo):
        regions = extent(repo, ("descendant", "regions"))
        names = extent(repo, ("descendant", "name"))
        assert structural_pairs(repo.structure, regions, names,
                                axis="child") == []

    def test_matches_navigation_baseline(self, repo):
        regions = extent(repo, ("child", "site"), ("child", "*"))
        names = extent(repo, ("descendant", "name"))
        assert sorted(structural_pairs(repo.structure, regions,
                                       names)) == \
            sorted(navigation_pairs(repo.structure, regions, names))

    def test_empty_inputs(self, repo):
        assert structural_pairs(repo.structure, [], [1, 2]) == []
        assert structural_pairs(repo.structure, [0], []) == []

    def test_output_in_descendant_document_order(self, repo):
        site = [0]
        names = extent(repo, ("descendant", "name"))
        pairs = structural_pairs(repo.structure, site, names)
        descendants = [d for _, d in pairs]
        assert descendants == sorted(descendants)

    def test_rows_merged(self, repo):
        join = StructuralJoin(
            [{"a": NodeItem(0), "tag": "root"}],
            [{"d": NodeItem(n)} for n in
             extent(repo, ("descendant", "person"))],
            repo.structure, "a", "d")
        rows = join.rows()
        assert rows and rows[0]["tag"] == "root"

    def test_bad_axis(self, repo):
        with pytest.raises(ValueError):
            StructuralJoin([], [], repo.structure, "a", "d",
                           axis="following")


@settings(deadline=None, max_examples=15)
@given(st.integers(0, 10_000))
def test_structural_equals_navigation_on_xmark(seed):
    """Property: stack-tree join == parent-chain walking, any extents."""
    import random
    repo = load_document(generate_xmark(0.003, seed=7))
    rng = random.Random(seed)
    n = len(repo.structure)
    ancestors = rng.sample(range(n), min(25, n))
    descendants = rng.sample(range(n), min(40, n))
    for axis in ("descendant", "child"):
        assert sorted(structural_pairs(repo.structure, ancestors,
                                       descendants, axis)) == \
            sorted(navigation_pairs(repo.structure, ancestors,
                                    descendants, axis))

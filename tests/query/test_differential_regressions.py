"""Pinned regressions from the differential oracle's engine sweep.

Each test is a minimized counterexample where the compressed-domain
:class:`~repro.query.engine.QueryEngine` used to disagree with the
decompress-first reference (:class:`~repro.baselines.galax.GalaxEngine`
over the fully reconstructed document).  Every test asserts *both*
parity and the semantically correct answer, so neither engine can
drift to a new shared wrong behaviour unnoticed.
"""

import pytest

from repro.baselines.galax import GalaxEngine
from repro.errors import XQueCError
from repro.query.context import EvaluationStats
from repro.query.engine import QueryEngine
from repro.storage.loader import load_document
from repro.xmlio.writer import serialize

VARIANTS = ("alm", "huffman")


def outcomes(xml, query, variant="alm"):
    """(compressed, reference) outcome pair, categorized like the oracle."""
    repository = load_document(xml, default_string_codec=variant)
    engine = QueryEngine(repository)
    reference_xml = serialize(
        engine.materialize_node(0, EvaluationStats()))

    def run(thunk):
        try:
            return ("ok", thunk())
        except XQueCError as exc:
            return ("error", type(exc).__name__)

    compressed = run(lambda: engine.execute(query).to_xml())
    reference = run(
        lambda: GalaxEngine(reference_xml).execute_to_xml(query))
    return compressed, reference


def assert_parity(xml, query, expected=None):
    for variant in VARIANTS:
        compressed, reference = outcomes(xml, query, variant)
        assert compressed == reference, (
            f"variant={variant}: {compressed} != {reference}")
        if expected is not None:
            assert compressed == expected, f"variant={variant}"


class TestMixedNumericContainer:
    """Bug: a container holding "500" and "5.5" was typed float, and

    the float codec's canonical decode rewrote "500" to "500.0" —
    observable through text() results and string equality.
    """

    XML = ("<site><a><price>500</price></a>"
           "<b><price>5.5</price></b></site>")

    def test_document_reconstructs_verbatim(self):
        repository = load_document(self.XML)
        engine = QueryEngine(repository)
        text = serialize(engine.materialize_node(0, EvaluationStats()))
        assert "<price>500</price>" in text
        assert "500.0" not in text

    def test_numeric_point_query(self):
        assert_parity(self.XML, "/site/a[price/text() = 500]/price",
                      ("ok", "<price>500</price>"))

    def test_sum_over_mixed_container(self):
        assert_parity(self.XML, "sum(/site//price/text())",
                      ("ok", "505.5"))


class TestStartsWithEmptySequence:
    """Bug: ``starts-with((), prefix)`` crashed instead of treating

    the empty sequence as the empty string.
    """

    XML = "<doc><p><name>ada</name></p><p/></doc>"

    def test_empty_prefix_on_empty_sequence_is_true(self):
        assert_parity(self.XML,
                      'count(/doc/p[starts-with(missing/text(), "")])',
                      ("ok", "2"))

    def test_nonempty_prefix_on_empty_sequence_is_false(self):
        assert_parity(self.XML,
                      'count(/doc/p[starts-with(name/text(), "a")])',
                      ("ok", "1"))


class TestUntypedComparisonOverNumericContainers:
    """Bug: the engine compared two numeric-container items by their

    container order (numeric), while untyped text comparison is
    lexicographic — "10" < "9".
    """

    XML = ("<doc><p><age>10</age></p><p><age>9</age></p></doc>")

    def test_var_var_comparison_is_lexicographic(self):
        query = ('for $a in /doc/p for $b in /doc/p '
                 'where $a/age/text() < $b/age/text() '
                 'return $a/age/text()')
        # "10" < "9" lexicographically, never the reverse.
        assert_parity(self.XML, query, ("ok", "10"))

    def test_string_constant_ineq_is_lexicographic(self):
        # "10" < "3" as strings; numerically 10 > 3.  A string
        # constant must force the string comparison.
        assert_parity(self.XML,
                      'count(/doc/p[age/text() < "3"])', ("ok", "1"))

    def test_string_constant_range_plan_path(self):
        query = ('for $p in /doc/p where $p/age/text() >= "2" '
                 'return $p/age/text()')
        assert_parity(self.XML, query, ("ok", "9"))

    def test_numeric_constant_still_numeric(self):
        assert_parity(self.XML,
                      'count(/doc/p[age/text() < 11])', ("ok", "2"))

    def test_age_vs_city_cross_container(self):
        xml = ("<doc><p><age>10</age><city>2</city></p></doc>")
        assert_parity(xml,
                      'count(/doc/p[age/text() < city/text()])',
                      ("ok", "1"))


class TestDivisionByZero:
    """Bug: engine raised bare ZeroDivisionError while the reference

    produced infinities that crashed during rendering; both must raise
    the same :class:`~repro.errors.QueryTypeError`.
    """

    XML = "<doc><p><q>0</q></p></doc>"

    @pytest.mark.parametrize("op", ["div", "mod"])
    def test_literal_division_by_zero(self, op):
        assert_parity(self.XML, f"1 {op} 2 {op} 0",
                      ("error", "QueryTypeError"))

    def test_division_by_zero_container_value(self):
        assert_parity(self.XML,
                      "for $p in /doc/p return 5 div $p/q/text()",
                      ("error", "QueryTypeError"))


class TestDistinctValuesRepresentations:
    """Bug: distinct-values compared compressed items from different

    containers (different codecs) and plain strings by identity, so
    equal values survived deduplication.
    """

    XML = ("<doc><p><name>ada</name><city>ada</city></p>"
           "<p><name>bob</name><city>oslo</city></p></doc>")

    def test_dedupe_across_containers(self):
        assert_parity(
            self.XML,
            'count(distinct-values((/doc/p/name/text(), '
            '/doc/p/city/text())))',
            ("ok", "3"))   # ada, bob, oslo

    def test_dedupe_against_literal(self):
        assert_parity(
            self.XML,
            'count(distinct-values((/doc/p/name/text(), "ada")))',
            ("ok", "2"))

    def test_same_container_still_dedupes_compressed(self):
        xml = "<doc><p><name>x</name></p><p><name>x</name></p></doc>"
        assert_parity(xml,
                      "count(distinct-values(/doc/p/name/text()))",
                      ("ok", "1"))


class TestNumericConversionErrors:
    """Bug: converting non-numeric text raised a bare ValueError that

    escaped the engine as a crash; the reference raised its own.  Both
    now raise :class:`~repro.errors.QueryTypeError`.
    """

    XML = "<doc><p><name>ada</name></p></doc>"

    def test_sum_over_text(self):
        assert_parity(self.XML, "sum(/doc/p/name/text())",
                      ("error", "QueryTypeError"))

    def test_arithmetic_over_text(self):
        assert_parity(self.XML,
                      "for $p in /doc/p return $p/name/text() + 1",
                      ("error", "QueryTypeError"))


class TestNegativeZero:
    """Bug: "-0.0" was accepted as a canonical float, but the total-

    order encoding places -0.0 strictly below 0.0 while comparisons
    treat them as equal — breaking the container's sortedness
    assumptions.  "-0.0" now stays in a string container and constant
    ``-0.0`` normalizes to ``0.0``.
    """

    XML = ("<doc><p><v>-0.0</v></p><p><v>0.0</v></p>"
           "<p><v>1.5</v></p></doc>")

    def test_mixed_zero_signs_load_and_query(self):
        assert_parity(self.XML, 'count(/doc/p[v/text() = "-0.0"])',
                      ("ok", "1"))

    def test_negative_zero_constant_normalizes(self):
        assert_parity(self.XML, "-0.0 = 0.0", ("ok", "True"))

    def test_document_reconstructs_verbatim(self):
        repository = load_document(self.XML)
        engine = QueryEngine(repository)
        text = serialize(engine.materialize_node(0, EvaluationStats()))
        assert "<v>-0.0</v>" in text


class TestNonFiniteRendering:
    """Bug: the engines rendered inf/nan as Python's ``inf``/``nan``

    instead of XQuery's ``INF``/``-INF``/``NaN`` (and disagreed with
    each other).
    """

    XML = "<doc><v>1e308</v></doc>"

    def test_overflow_to_inf_renders_as_INF(self):
        assert_parity(self.XML,
                      "for $v in /doc/v return $v/text() * 10",
                      ("ok", "INF"))

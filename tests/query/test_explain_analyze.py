"""EXPLAIN ANALYZE: rendered actuals must be the run's real stats.

The acceptance bar for the observability layer: the counters printed in
the report are *exactly* the ``QueryResult.stats`` totals of the same
run (both views read one shared ``MetricsRegistry``), and a cold engine
(telemetry disabled) pays next to nothing for the instrumentation.
"""

import json
import re
import time

import pytest

from repro.query.analyze import explain_analyze
from repro.query.engine import QueryEngine
from repro.storage.loader import load_document

DOC = """
<site>
  <people>
    <person id="person0"><name>Alice</name><age>31</age></person>
    <person id="person1"><name>Bob</name><age>27</age></person>
    <person id="person2"><name>Carol</name><age>45</age></person>
  </people>
  <auctions>
    <auction id="a0"><buyer person="person1"/><price>10</price></auction>
    <auction id="a1"><buyer person="person0"/><price>55</price></auction>
    <auction id="a2"><buyer person="person1"/><price>7</price></auction>
  </auctions>
</site>
"""

RANGE_QUERY = ("for $p in /site/people/person "
               "where $p/age/text() < 30 return $p/name/text()")

JOIN_QUERY = ("for $p in /site/people/person, "
              "$a in /site/auctions/auction "
              "where $a/buyer/@person = $p/@id "
              "return $p/name/text()")


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(load_document(DOC))


def rendered_counters(text: str) -> dict[str, int]:
    """Parse the ``-- counters --`` section back into a dict."""
    lines = text.splitlines()
    start = next(i for i, line in enumerate(lines)
                 if line.startswith("-- counters"))
    out = {}
    for line in lines[start + 1:]:
        match = re.match(r"(\w+)\s+(\d+)$", line)
        if not match:
            break
        out[match.group(1)] = int(match.group(2))
    return out


class TestRangePlan:
    def test_report_shape(self, engine):
        report = explain_analyze(RANGE_QUERY, engine)
        assert report.text.startswith("EXPLAIN ANALYZE")
        assert "[actual container_accesses=" in report.text
        assert "-- operators --" in report.text
        assert report.result.items == ["Bob"]

    def test_counters_equal_result_stats(self, engine):
        report = explain_analyze(RANGE_QUERY, engine)
        stats = report.result.stats
        parsed = rendered_counters(report.text)
        assert parsed == stats.as_dict()
        assert parsed["container_accesses"] >= 1

    def test_stats_and_telemetry_share_one_registry(self, engine):
        report = explain_analyze(RANGE_QUERY, engine)
        assert report.result.stats.registry is report.telemetry.metrics

    def test_operator_timings_present(self, engine):
        report = explain_analyze(RANGE_QUERY, engine)
        profile = report.telemetry.operator_profile()
        assert profile["Execute"]["count"] == 1
        assert profile["ContAccess"]["count"] >= 1
        assert profile["Execute"]["total"] >= 0


class TestHashJoin:
    def test_join_annotated_and_counted(self, engine):
        report = explain_analyze(JOIN_QUERY, engine)
        stats = report.result.stats
        assert stats.hash_joins >= 1
        assert f"[actual hash_joins={stats.hash_joins}," in report.text
        assert sorted(report.result.items) == ["Alice", "Bob", "Bob"]

    def test_counters_equal_result_stats(self, engine):
        report = explain_analyze(JOIN_QUERY, engine)
        assert rendered_counters(report.text) == \
            report.result.stats.as_dict()

    def test_join_build_span_recorded(self, engine):
        report = explain_analyze(JOIN_QUERY, engine)
        assert "HashJoin.build" in report.telemetry.operator_profile()


class TestJsonExport:
    def test_report_json_matches_stats(self, engine):
        report = explain_analyze(RANGE_QUERY, engine)
        doc = json.loads(report.to_json())
        counters = doc["metrics"]["counters"]
        for name, value in report.result.stats.as_dict().items():
            assert counters[name] == value
        assert doc["trace"]["spans"], "trace forest must be recorded"

    def test_engine_explain_analyze_returns_text(self, engine):
        text = engine.explain_analyze(RANGE_QUERY)
        assert isinstance(text, str)
        assert text.startswith("EXPLAIN ANALYZE")


class TestDisabledOverhead:
    def test_disabled_run_records_no_telemetry(self, engine):
        result = engine.execute(RANGE_QUERY)
        assert result.telemetry.enabled is False
        assert result.telemetry.tracer.roots == []
        # The stats counters themselves stay available (always-on).
        assert result.stats.container_accesses >= 1

    def test_disabled_overhead_under_bound(self, engine):
        """Telemetry off must not cost more than telemetry on.

        The acceptance bar is <5% regression vs the uninstrumented
        seed; the seed is gone, but the enabled path does strictly
        more work than the disabled path, so disabled-min beyond
         25% above enabled-min would mean the disabled path itself
        acquired real overhead.  Generous margin absorbs CI noise.
        """
        from repro.obs.telemetry import Telemetry
        from repro.query.options import ExecutionOptions

        def best_of(runs: int, make_telemetry) -> float:
            best = float("inf")
            for _ in range(runs):
                telemetry = make_telemetry()
                start = time.perf_counter()
                engine.execute(
                    RANGE_QUERY,
                    ExecutionOptions(telemetry=telemetry)).items
                best = min(best, time.perf_counter() - start)
            return best

        disabled = best_of(30, lambda: None)
        enabled = best_of(30, lambda: Telemetry(enabled=True))
        assert disabled <= enabled * 1.25 + 1e-4

"""Direct tests for the physical operator algebra."""

import pytest

from repro.query.context import CompressedItem, EvaluationStats, NodeItem
from repro.query.physical import (
    AttributeContent,
    Child,
    ContAccess,
    ContScan,
    CompressConstant,
    Decompress,
    Descendant,
    Distinct,
    HashJoin,
    MergeJoin,
    NestedLoopJoin,
    Parent,
    Project,
    Select,
    Sort,
    StructureSummaryAccess,
    TextContent,
)
from repro.storage.loader import load_document

DOC = """
<site>
  <people>
    <person id="p0"><name>Carol</name><age>45</age></person>
    <person id="p1"><name>Alice</name><age>31</age></person>
    <person id="p2"><name>Bob</name><age>27</age></person>
  </people>
  <sales>
    <sale buyer="p1"><total>10</total></sale>
    <sale buyer="p0"><total>20</total></sale>
  </sales>
</site>
"""

NAME_PATH = "/site/people/person/name/#text"
ID_PATH = "/site/people/person/@id"


@pytest.fixture(scope="module")
def repo():
    return load_document(DOC)


@pytest.fixture
def stats():
    return EvaluationStats()


class TestDataAccess:
    def test_cont_scan_value_order(self, repo, stats):
        rows = ContScan(repo, NAME_PATH, "id", "v", stats).rows()
        codec = repo.container(NAME_PATH).codec
        values = [codec.decode(r["v"].compressed) for r in rows]
        assert values == ["Alice", "Bob", "Carol"]
        assert stats.container_scans == 1

    def test_cont_access_interval(self, repo, stats):
        rows = ContAccess(repo, NAME_PATH, "id", "v",
                          low="Alice", high="Bob", stats=stats).rows()
        codec = repo.container(NAME_PATH).codec
        assert [codec.decode(r["v"].compressed) for r in rows] == \
            ["Alice", "Bob"]
        assert stats.container_accesses == 1

    def test_summary_access_document_order(self, repo, stats):
        rows = StructureSummaryAccess(
            repo, [("descendant", "person")], "n", stats).rows()
        ids = [r["n"].node_id for r in rows]
        assert ids == sorted(ids)
        assert len(ids) == 3
        assert stats.summary_accesses == 1

    def test_child_preserves_input_order(self, repo):
        people = StructureSummaryAccess(repo, [("child", "site"),
                                               ("child", "people")], "p")
        persons = Child(people, repo, "p", "c", tag="person").rows()
        assert len(persons) == 3
        ids = [r["c"].node_id for r in persons]
        assert ids == sorted(ids)

    def test_child_unknown_tag_empty(self, repo):
        people = StructureSummaryAccess(repo, [("child", "site")], "p")
        assert Child(people, repo, "p", "c", tag="ghost").rows() == []

    def test_parent(self, repo):
        persons = StructureSummaryAccess(
            repo, [("descendant", "person")], "n")
        parents = Parent(persons, repo, "n", "up").rows()
        tags = {repo.tag_of(r["up"].node_id) for r in parents}
        assert tags == {"people"}

    def test_parent_drops_root(self, repo):
        root_rows = [{"n": NodeItem(0)}]
        assert Parent(root_rows, repo, "n", "up").rows() == []

    def test_descendant(self, repo):
        site = [{"n": NodeItem(0)}]
        rows = Descendant(site, repo, "n", "d", tag="total").rows()
        assert len(rows) == 2

    def test_text_content_hash_join(self, repo, stats):
        persons = StructureSummaryAccess(
            repo, [("descendant", "name")], "n")
        rows = TextContent(persons, repo, "n", "text", NAME_PATH,
                           stats).rows()
        assert len(rows) == 3
        assert stats.hash_joins == 1
        decoded = sorted(r["text"].decode(stats) for r in rows)
        assert decoded == ["Alice", "Bob", "Carol"]

    def test_attribute_content(self, repo):
        persons = StructureSummaryAccess(
            repo, [("descendant", "person")], "n")
        rows = AttributeContent(persons, repo, "n", "id_val",
                                ID_PATH).rows()
        assert len(rows) == 3


class TestCombination:
    ROWS = [{"k": 1, "v": "a"}, {"k": 2, "v": "b"}, {"k": 1, "v": "c"}]

    def test_select(self):
        out = Select(self.ROWS, lambda r: r["k"] == 1).rows()
        assert [r["v"] for r in out] == ["a", "c"]

    def test_project(self):
        out = Project(self.ROWS, ["k"]).rows()
        assert out == [{"k": 1}, {"k": 2}, {"k": 1}]

    def test_hash_join(self):
        left = [{"l": 1}, {"l": 2}, {"l": 3}]
        right = [{"r": 2, "tag": "x"}, {"r": 2, "tag": "y"}]
        out = HashJoin(left, right, lambda r: r["l"],
                       lambda r: r["r"]).rows()
        assert [(r["l"], r["tag"]) for r in out] == [(2, "x"), (2, "y")]

    def test_merge_join_with_duplicate_runs(self):
        left = [{"l": 1}, {"l": 2}, {"l": 2}, {"l": 5}]
        right = [{"r": 2}, {"r": 2}, {"r": 5}]
        out = MergeJoin(left, right, lambda r: r["l"],
                        lambda r: r["r"]).rows()
        # 2x2 cross product on key 2 plus one match on key 5.
        assert len(out) == 5

    def test_merge_join_empty_side(self):
        assert MergeJoin([], [{"r": 1}], lambda r: r.get("l"),
                         lambda r: r["r"]).rows() == []

    def test_nested_loop_join_theta(self):
        left = [{"l": 1}, {"l": 4}]
        right = [{"r": 2}, {"r": 3}]
        out = NestedLoopJoin(left, right,
                             lambda a, b: a["l"] < b["r"]).rows()
        assert len(out) == 2  # (1,2) and (1,3)

    def test_distinct(self):
        out = Distinct(self.ROWS, lambda r: r["k"]).rows()
        assert [r["k"] for r in out] == [1, 2]

    def test_sort(self):
        out = Sort(self.ROWS, lambda r: r["v"], reverse=True).rows()
        assert [r["v"] for r in out] == ["c", "b", "a"]


class TestCompressionOperators:
    def test_decompress_operator(self, repo, stats):
        rows = ContScan(repo, NAME_PATH, "id", "v").rows()
        out = Decompress(rows, ["v"], stats).rows()
        assert sorted(r["v"] for r in out) == ["Alice", "Bob", "Carol"]
        assert stats.decompressions == 3

    def test_decompress_skips_plain_columns(self, stats):
        out = Decompress([{"v": "already plain"}], ["v"], stats).rows()
        assert out == [{"v": "already plain"}]
        assert stats.decompressions == 0

    def test_compress_constant(self, repo):
        helper = CompressConstant(repo, NAME_PATH)
        encoded = helper.encode("Alice")
        assert encoded is not None
        codec = repo.container(NAME_PATH).codec
        assert codec.decode(encoded) == "Alice"
        assert helper.encode("ZZZ~unseen") is None


class TestCompressedJoinPipeline:
    """A miniature Figure 5: join two containers on compressed keys."""

    def test_merge_join_on_compressed_attributes(self, repo):
        # person/@id and sale/@buyer were compressed independently, so
        # join via decoded keys (with a shared model the compressed
        # bytes themselves would be the keys).
        stats = EvaluationStats()
        persons = ContScan(repo, ID_PATH, "person", "pid", stats)
        sales = ContScan(repo, "/site/sales/sale/@buyer", "sale",
                         "buyer", stats)
        out = HashJoin(persons.rows(), sales.rows(),
                       lambda r: r["pid"].decode(stats),
                       lambda r: r["buyer"].decode(stats),
                       stats).rows()
        assert len(out) == 2
        joined = {(r["pid"].decode(stats)) for r in out}
        assert joined == {"p0", "p1"}

"""Navigating *constructed* elements (engine and Galax agree)."""

import pytest

from repro.baselines.galax import GalaxEngine
from repro.query.engine import QueryEngine
from repro.storage.loader import load_document

DOC = "<db><x><v>1</v></x><x><v>2</v></x></db>"


@pytest.fixture(scope="module")
def engine():
    return QueryEngine(load_document(DOC))


class TestConstructedNavigation:
    def test_child_step_on_constructor(self, engine):
        result = engine.execute(
            "for $r in <a><b>hello</b></a> return $r/b/text()")
        assert result.items == ["hello"]

    def test_attribute_step_on_constructor(self, engine):
        result = engine.execute(
            'for $r in <a id="7"/> return $r/@id')
        assert result.items == ["7"]

    def test_descendant_step_on_constructor(self, engine):
        result = engine.execute(
            "for $r in <a><b><c>x</c></b></a> return $r//c/text()")
        assert result.items == ["x"]

    def test_let_bound_constructed_tree(self, engine):
        result = engine.execute(
            "let $t := <t>{for $x in /db/x return <n>{$x/v/text()}"
            "</n>}</t> return count($t/n)")
        assert result.items == [2.0]

    def test_wildcard_on_constructor(self, engine):
        result = engine.execute(
            "for $r in <a><p/><q/></a> return count($r/*)")
        assert result.items == [2.0]

    def test_mixed_repository_and_constructed(self, engine):
        # Repository nodes embedded in a constructor remain navigable.
        result = engine.execute(
            "let $w := <wrap>{/db/x}</wrap> return count($w/x/v)")
        assert result.items == [2.0]

    def test_galax_agrees(self, engine):
        queries = [
            "for $r in <a><b>hello</b></a> return $r/b/text()",
            "let $t := <t>{for $x in /db/x return <n>{$x/v/text()}"
            "</n>}</t> return count($t/n)",
        ]
        galax = GalaxEngine(DOC)
        for query in queries:
            assert engine.execute(query).to_xml() == \
                galax.execute_to_xml(query), query

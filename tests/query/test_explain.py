"""Tests for the plan explanation facility."""

from repro.query.explain import explain
from repro.xmark.queries import query_text


class TestExplain:
    def test_summary_access_reported(self):
        plan = explain("/site/people/person")
        assert "StructureSummaryAccess" in plan

    def test_range_plan_reported(self):
        plan = explain(
            'for $p in /site/people/person '
            'where $p/name/text() = "Bob" return $p')
        assert "ContAccess interval" in plan
        assert "Parent^1" in plan

    def test_hash_join_reported(self):
        plan = explain(query_text("Q8"))
        assert "HashJoin" in plan
        assert "build side cacheable" in plan

    def test_fulltext_plan_reported(self):
        plan = explain(
            'for $i in /site/item '
            'where word-contains($i/desc/text(), "gold") return $i')
        assert "FullTextIndex lookup" in plan
        assert "'gold'" in plan

    def test_fallback_select_reported(self):
        plan = explain(
            "for $i in /site/item "
            "where $i/a/text() = $i/b/text() return $i")
        assert "Select" in plan

    def test_order_by_reported(self):
        plan = explain(
            "for $i in /site/item order by $i/p/text() descending "
            "return $i")
        assert "order by (descending)" in plan

    def test_constructor_reported(self):
        plan = explain('for $i in /a return <out>{$i/b}</out>')
        assert "construct <out>" in plan
        assert "Decompress" in plan

    def test_nested_flwor(self):
        plan = explain(query_text("Q9"))
        assert plan.count("for $") >= 3
        assert "HashJoin" in plan

    def test_aggregate_path(self):
        plan = explain("count(//person)")
        assert "count(...)" in plan
        assert "StructureSummaryAccess" in plan

    def test_predicated_path_noted(self):
        plan = explain('/site/person[@id = "x"]')
        assert "per-step evaluation" in plan

"""Shipping error paths + result-set framing.

The §1 network argument only holds if a shipped payload is safe to
receive: truncated streams, out-of-range codec references and garbage
code bits must raise :class:`CorruptDataError` — never leak a
``struct.error``/``KeyError``/``IndexError`` — and must never hand the
caller a partially materialized result.  Fuzzed with the PR 5
adversarial corpus generators.
"""

import random

import pytest

from repro.errors import CorruptDataError, XQueCError
from repro.query.engine import QueryEngine
from repro.query.shipping import (
    FRAME_MAGIC,
    receive,
    receive_result,
    ship_result,
)
from repro.storage.loader import load_document
from repro.verify.documents import generate_entities, render_xml
from repro.verify.queries import generate_queries

SEED = 1234


@pytest.fixture(scope="module")
def corpus():
    """(engine, queries) over a PR 5 adversarial document."""
    rng = random.Random(SEED)
    entities = generate_entities(rng, scale=12)
    engine = QueryEngine(load_document(render_xml(entities)))
    queries = generate_queries(entities, rng, 12)
    return engine, queries


@pytest.fixture(scope="module")
def frames(corpus):
    engine, queries = corpus
    out = []
    for query in queries:
        result = engine.execute(query)
        result.values()  # materialize first so stats are final
        out.append((query, result, ship_result(result)))
    return out


class TestFraming:
    def test_round_trip_values_and_xml(self, frames):
        for query, result, frame in frames:
            received = receive_result(frame)
            assert received.values == result.values(), query
            assert received.to_xml() == result.to_xml(), query

    def test_round_trip_stats(self, frames):
        for _, result, frame in frames:
            received = receive_result(frame)
            assert received.stats.as_dict() == result.stats.as_dict()

    def test_byte_accounting(self, frames):
        for _, result, frame in frames:
            received = receive_result(frame)
            assert received.wire_bytes == len(frame)
            assert received.plain_bytes >= 0
            if len(received.values) == 0:
                continue
            ratio = received.compression_ratio
            assert ratio is None or ratio > 0

    def test_bad_magic_rejected(self, frames):
        _, _, frame = frames[0]
        mangled = b"NOPE" + frame[len(FRAME_MAGIC):]
        with pytest.raises(CorruptDataError):
            receive_result(mangled)

    def test_bad_version_rejected(self, frames):
        _, _, frame = frames[0]
        mangled = frame[:4] + bytes([250]) + frame[5:]
        with pytest.raises(CorruptDataError):
            receive_result(mangled)

    def test_trailing_bytes_rejected(self, frames):
        for _, _, frame in frames[:4]:
            with pytest.raises(CorruptDataError):
                receive_result(frame + b"\x00")


def _assert_receive_total(payload: bytes) -> None:
    """receive/receive_result either succeed or raise CorruptDataError.

    Any other exception type is a broken error path; a successful
    decode must be a complete list (receive never yields partials, so
    success + list is the whole contract checkable from outside).
    """
    for decoder in (receive_result,):
        try:
            received = decoder(payload)
        except CorruptDataError:
            continue
        except XQueCError as exc:  # any other library error is a bug
            raise AssertionError(
                f"{decoder.__name__} raised {type(exc).__name__}, "
                f"expected CorruptDataError") from exc
        except Exception as exc:  # noqa: BLE001
            raise AssertionError(
                f"{decoder.__name__} leaked {type(exc).__name__}: "
                f"{exc}") from exc
        assert isinstance(received.values, list)


class TestFuzzedPayloads:
    def test_truncations(self, frames):
        _, _, frame = frames[0]
        # Every cut in the header region, then sampled cuts across
        # the body (an exhaustive sweep re-deserializes the shipped
        # source models thousands of times for no extra coverage).
        rng = random.Random(SEED)
        cuts = set(range(min(24, len(frame))))
        cuts.update(rng.randrange(len(frame)) for _ in range(48))
        for cut in sorted(cuts):
            truncated = frame[:cut]
            with pytest.raises(CorruptDataError):
                receive_result(truncated)

    def test_truncated_item_payload_raises_not_struct_error(self,
                                                            frames):
        # Cut inside the inner ship() payload of every frame.
        for _, _, frame in frames:
            for cut in (len(frame) - 1, len(frame) - 3,
                        int(len(frame) * 0.75)):
                if cut <= 0:
                    continue
                with pytest.raises(CorruptDataError):
                    receive_result(frame[:cut])

    def test_random_byte_flips(self, frames):
        rng = random.Random(SEED)
        for _, _, frame in frames[:4]:
            for _ in range(12):
                mutated = bytearray(frame)
                for _ in range(rng.randint(1, 4)):
                    pos = rng.randrange(len(mutated))
                    mutated[pos] ^= 1 << rng.randrange(8)
                _assert_receive_total(bytes(mutated))

    def test_random_garbage(self):
        rng = random.Random(SEED + 1)
        for _ in range(60):
            garbage = bytes(rng.randrange(256)
                            for _ in range(rng.randrange(1, 120)))
            _assert_receive_total(garbage)
            try:
                receive(garbage)
            except CorruptDataError:
                pass

    def test_unknown_codec_reference(self, corpus):
        engine, queries = corpus
        # Find a frame whose payload carries a compressed item, then
        # bump its codec index out of range.
        from repro.query.shipping import _KIND_COMPRESSED  # noqa: PLC2701
        from repro.query.context import CompressedItem
        for query in queries:
            result = engine.execute(query)
            if not any(isinstance(i, CompressedItem)
                       for i in result._raw_items):
                continue
            frame = bytearray(ship_result(result))
            # The first _KIND_COMPRESSED tag byte is followed by the
            # codec index varint; 0x7F is out of range for any corpus
            # result (few distinct codecs per query).
            for pos in range(len(frame) - 1):
                if frame[pos] == _KIND_COMPRESSED:
                    frame[pos + 1] = 0x7F
                    break
            _assert_receive_total(bytes(frame))
            return
        pytest.skip("corpus produced no compressed items")

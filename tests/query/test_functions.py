"""Tests for the built-in function library."""

import pytest

from repro.compression.registry import train_codec
from repro.errors import QueryTypeError
from repro.query.context import CompressedItem, EvaluationStats
from repro.query.functions import FUNCTIONS


def call(name, *arg_sequences):
    stats = EvaluationStats()
    return FUNCTIONS[name](list(arg_sequences), stats), stats


class TestStringFunctions:
    def test_contains(self):
        assert call("contains", ["hello world"], ["lo w"])[0] == [True]
        assert call("contains", ["hello"], ["xyz"])[0] == [False]

    def test_contains_empty_args(self):
        assert call("contains", [], ["x"])[0] == [False]

    def test_starts_with_plain(self):
        assert call("starts-with", ["hello"], ["he"])[0] == [True]
        assert call("starts-with", ["hello"], ["lo"])[0] == [False]

    def test_starts_with_compressed_domain(self):
        codec = train_codec("huffman", ["alpha", "beta"])
        item = CompressedItem(codec.encode("alpha"), codec)
        stats = EvaluationStats()
        result = FUNCTIONS["starts-with"]([[item], ["al"]], stats)
        assert result == [True]
        assert stats.decompressions == 0
        assert stats.compressed_comparisons == 1

    def test_starts_with_out_of_model_prefix(self):
        codec = train_codec("huffman", ["alpha"])
        item = CompressedItem(codec.encode("alpha"), codec)
        stats = EvaluationStats()
        assert FUNCTIONS["starts-with"]([[item], ["XY"]], stats) == \
            [False]

    def test_string_and_length(self):
        assert call("string", [42.0])[0] == ["42"]
        assert call("string", [])[0] == [""]
        assert call("string-length", ["hello"])[0] == [5.0]


class TestAggregates:
    def test_count(self):
        assert call("count", [1.0, 2.0, 3.0])[0] == [3.0]
        assert call("count", [])[0] == [0.0]

    def test_sum_avg(self):
        assert call("sum", [1.0, 2.0, 3.0])[0] == [6.0]
        assert call("avg", [1.0, 2.0, 3.0])[0] == [2.0]
        assert call("avg", [])[0] == []
        assert call("sum", [])[0] == [0.0]

    def test_min_max(self):
        assert call("min", [3.0, 1.0, 2.0])[0] == [1.0]
        assert call("max", [3.0, 1.0, 2.0])[0] == [3.0]
        assert call("min", [])[0] == []

    def test_sum_coerces_strings(self):
        assert call("sum", ["1", "2.5"])[0] == [3.5]


class TestSequenceFunctions:
    def test_empty(self):
        assert call("empty", [])[0] == [True]
        assert call("empty", ["x"])[0] == [False]

    def test_not(self):
        assert call("not", [])[0] == [True]
        assert call("not", [True])[0] == [False]

    def test_zero_or_one(self):
        assert call("zero-or-one", ["a"])[0] == ["a"]
        assert call("zero-or-one", [])[0] == []
        with pytest.raises(QueryTypeError):
            call("zero-or-one", ["a", "b"])

    def test_number(self):
        assert call("number", ["42"])[0] == [42.0]
        assert call("number", [])[0] == []

    def test_distinct_values(self):
        assert call("distinct-values", ["a", "b", "a"])[0] == ["a", "b"]

    def test_distinct_compressed_without_decode(self):
        codec = train_codec("huffman", ["x", "y"])
        items = [CompressedItem(codec.encode("x"), codec),
                 CompressedItem(codec.encode("x"), codec),
                 CompressedItem(codec.encode("y"), codec)]
        stats = EvaluationStats()
        result = FUNCTIONS["distinct-values"]([items], stats)
        assert len(result) == 2
        assert stats.decompressions == 0


class TestArity:
    @pytest.mark.parametrize("name,args", [
        ("count", []), ("contains", [["x"]]), ("sum", [[], []]),
    ])
    def test_wrong_arity(self, name, args):
        stats = EvaluationStats()
        with pytest.raises(QueryTypeError):
            FUNCTIONS[name](args, stats)

"""Tests for the XQuery-subset parser."""

import pytest

from repro.errors import QuerySyntaxError, UnsupportedFeatureError
from repro.query.ast import (
    Arithmetic,
    Comparison,
    ContextItem,
    ElementConstructor,
    FLWOR,
    ForClause,
    FunctionCall,
    LetClause,
    Logical,
    NumberLiteral,
    PathExpr,
    StringLiteral,
    TextLiteral,
    VarRef,
)
from repro.query.parser import parse_path_steps, parse_query


class TestPaths:
    def test_absolute_path(self):
        ast = parse_query("/site/people/person")
        assert isinstance(ast, PathExpr)
        assert ast.start is None
        assert [(s.axis, s.test) for s in ast.steps] == [
            ("child", "site"), ("child", "people"), ("child", "person")]

    def test_descendant_axis(self):
        ast = parse_query("//item")
        assert ast.steps[0].axis == "descendant"

    def test_document_function(self):
        ast = parse_query('document("auction.xml")/site')
        assert isinstance(ast, PathExpr) and ast.start is None

    def test_attribute_and_text_steps(self):
        ast = parse_query("$p/@id")
        assert ast.steps[0].axis == "attribute"
        ast = parse_query("$p/name/text()")
        assert ast.steps[-1].test == "text()"

    def test_wildcard(self):
        ast = parse_query("/site/*")
        assert ast.steps[1].test == "*"

    def test_step_predicates(self):
        ast = parse_query('/site/person[@id = "p0"][2]')
        person = ast.steps[1]
        assert len(person.predicates) == 2
        assert isinstance(person.predicates[0], Comparison)
        assert isinstance(person.predicates[1], NumberLiteral)

    def test_relative_path_in_predicate(self):
        ast = parse_query("/site/item[price > 100]")
        predicate = ast.steps[1].predicates[0]
        assert isinstance(predicate.left, PathExpr)
        assert isinstance(predicate.left.start, ContextItem)


class TestFLWOR:
    Q = """
    for $p in document("auction.xml")/site/people/person
    let $n := $p/name
    where $p/@id = "person0" and count($n) > 0
    return $n/text()
    """

    def test_shape(self):
        ast = parse_query(self.Q)
        assert isinstance(ast, FLWOR)
        assert isinstance(ast.clauses[0], ForClause)
        assert isinstance(ast.clauses[1], LetClause)
        assert isinstance(ast.where, Logical)
        assert isinstance(ast.result, PathExpr)

    def test_multiple_for_bindings(self):
        ast = parse_query(
            "for $a in /x/a, $b in /x/b return $a")
        assert [c.var for c in ast.clauses] == ["a", "b"]

    def test_nested_flwor_in_let(self):
        ast = parse_query(
            "for $p in /s/p let $a := for $t in /s/t "
            "where $t/@r = $p/@id return $t return count($a)")
        assert isinstance(ast.clauses[1].source, FLWOR)

    def test_where_optional(self):
        ast = parse_query("for $x in /a return $x")
        assert ast.where is None


class TestExpressions:
    def test_precedence_or_and(self):
        ast = parse_query("for $x in /a where 1 = 1 or 2 = 2 and 3 = 3 "
                          "return $x")
        assert ast.where.op == "or"
        assert ast.where.right.op == "and"

    def test_arithmetic_precedence(self):
        ast = parse_query("1 + 2 * 3")
        assert isinstance(ast, Arithmetic) and ast.op == "+"
        assert ast.right.op == "*"

    def test_comparison_operators(self):
        for op_text, op in [("=", "="), ("!=", "!="), ("<", "<"),
                            ("<=", "<="), (">", ">"), (">=", ">=")]:
            ast = parse_query(f"1 {op_text} 2")
            assert isinstance(ast, Comparison) and ast.op == op

    def test_function_call(self):
        ast = parse_query('contains($d, "gold")')
        assert isinstance(ast, FunctionCall)
        assert ast.name == "contains" and len(ast.args) == 2

    def test_unknown_function_rejected(self):
        with pytest.raises(UnsupportedFeatureError):
            parse_query("frobnicate($x)")

    def test_sequence(self):
        ast = parse_query("(1, 2, 3)")
        assert len(ast.items) == 3

    def test_parenthesized_single(self):
        ast = parse_query('("x")')
        assert isinstance(ast, StringLiteral)

    def test_unary_minus(self):
        ast = parse_query("-5")
        assert isinstance(ast, Arithmetic) and ast.op == "-"


class TestConstructors:
    def test_empty_element(self):
        ast = parse_query("<result/>")
        assert isinstance(ast, ElementConstructor)
        assert ast.name == "result"

    def test_text_content(self):
        ast = parse_query("<a>hello</a>")
        assert isinstance(ast.content[0], TextLiteral)

    def test_embedded_expression(self):
        ast = parse_query("<a>{$x/name}</a>")
        assert isinstance(ast.content[0], PathExpr)

    def test_nested_constructor(self):
        ast = parse_query("<a><b>{$x}</b></a>")
        inner = ast.content[0]
        assert isinstance(inner, ElementConstructor)
        assert inner.name == "b"
        assert isinstance(inner.content[0], VarRef)

    def test_attribute_with_expression(self):
        ast = parse_query('<person name="{$p/name/text()}"/>')
        (attr_name, parts), = ast.attributes
        assert attr_name == "name"
        assert isinstance(parts[0], PathExpr)

    def test_mismatched_end_tag(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("<a></b>")

    def test_flwor_inside_constructor(self):
        ast = parse_query(
            "<out>{for $x in /a/b return $x/text()}</out>")
        assert isinstance(ast.content[0], FLWOR)


class TestErrors:
    @pytest.mark.parametrize("text", [
        "for $x return $x",     # missing 'in'
        "for in /a return 1",   # missing variable
        "1 +",                  # dangling operator
        "/a/b[",                # unterminated predicate
        "for $x in /a",         # missing return
        "$x extra garbage $y",  # trailing input
        "",                     # empty query
    ])
    def test_rejected(self, text):
        with pytest.raises(QuerySyntaxError):
            parse_query(text)


class TestParsePathSteps:
    def test_basic(self):
        assert parse_path_steps("/site//item/@id") == [
            ("child", "site"), ("descendant", "item"), ("child", "@id")]

    def test_requires_leading_slash(self):
        with pytest.raises(QuerySyntaxError):
            parse_path_steps("site/people")

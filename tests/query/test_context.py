"""Tests for the item model and compressed-domain comparisons."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.registry import train_codec
from repro.errors import QueryTypeError
from repro.query.context import (
    CompressedItem,
    EvaluationStats,
    NodeItem,
    compare_items,
    effective_boolean,
    number_value,
    string_value,
)
from repro.xmlio.dom import Element, Text

WORDS = ["apple", "banana", "cherry", "date", "elderberry"]


def items_for(codec_name, values=WORDS):
    codec = train_codec(codec_name, values)
    return {v: CompressedItem(codec.encode(v), codec) for v in values}


class TestCompressedComparison:
    def test_alm_inequality_compressed(self):
        stats = EvaluationStats()
        items = items_for("alm")
        assert compare_items("<", items["apple"], items["banana"], stats)
        assert not compare_items(">", items["apple"], items["banana"],
                                 stats)
        assert stats.compressed_comparisons == 2
        assert stats.decompressions == 0

    def test_huffman_equality_compressed(self):
        stats = EvaluationStats()
        items = items_for("huffman")
        assert compare_items("=", items["date"], items["date"], stats)
        assert compare_items("!=", items["date"], items["apple"], stats)
        assert stats.compressed_comparisons == 2
        assert stats.decompressions == 0

    def test_huffman_inequality_decompresses(self):
        stats = EvaluationStats()
        items = items_for("huffman")
        assert compare_items("<", items["apple"], items["banana"], stats)
        assert stats.decompressed_comparisons == 1
        assert stats.decompressions == 2

    def test_different_codecs_decompress(self):
        stats = EvaluationStats()
        a = items_for("alm")["apple"]
        b = items_for("huffman")["apple"]
        assert compare_items("=", a, b, stats)
        assert stats.decompressed_comparisons == 1


class TestConstantComparison:
    def test_equality_against_constant_compressed(self):
        stats = EvaluationStats()
        item = items_for("huffman")["cherry"]
        assert compare_items("=", item, "cherry", stats)
        assert not compare_items("=", item, "apple", stats)
        assert stats.decompressions == 0

    def test_out_of_model_constant_never_equal(self):
        stats = EvaluationStats()
        item = items_for("huffman")["cherry"]
        assert not compare_items("=", item, "XYZ!", stats)
        assert compare_items("!=", item, "XYZ!", stats)
        assert stats.decompressions == 0

    def test_inequality_against_constant_with_alm(self):
        stats = EvaluationStats()
        item = items_for("alm")["banana"]
        assert compare_items("<", item, "cherry", stats)
        assert compare_items(">", item, "apple", stats)
        assert stats.decompressions == 0

    def test_flipped_operands(self):
        stats = EvaluationStats()
        item = items_for("alm")["banana"]
        assert compare_items("<", "apple", item, stats)
        assert compare_items(">=", "cherry", item, stats)

    def test_numeric_constant_on_string_container_decodes(self):
        stats = EvaluationStats()
        codec = train_codec("alm", ["10", "9"])
        item = CompressedItem(codec.encode("10"), codec, "string")
        # Numeric semantics: 10 > 9 even though "10" < "9".
        assert compare_items(">", item, 9.0, stats)
        assert stats.decompressions >= 1

    def test_numeric_container_compressed_numeric_compare(self):
        stats = EvaluationStats()
        codec = train_codec("integer", ["5", "100"])
        item = CompressedItem(codec.encode("42"), codec, "int")
        assert compare_items(">", item, 9.0, stats)
        assert compare_items("<", item, 100.0, stats)
        assert stats.decompressions == 0

    def test_fractional_constant_on_int_container(self):
        stats = EvaluationStats()
        codec = train_codec("integer", ["5", "100"])
        item = CompressedItem(codec.encode("42"), codec, "int")
        # 42 vs 41.5 cannot be answered on the int codec; falls back.
        assert compare_items(">", item, 41.5, stats)


class TestAtomicHelpers:
    def test_string_value(self):
        stats = EvaluationStats()
        assert string_value("x", stats) == "x"
        assert string_value(True, stats) == "true"
        assert string_value(3.0, stats) == "3"
        assert string_value(3.5, stats) == "3.5"
        element = Element("a", children=[Text("hi")])
        assert string_value(element, stats) == "hi"

    def test_string_value_decodes(self):
        stats = EvaluationStats()
        item = items_for("alm")["apple"]
        assert string_value(item, stats) == "apple"
        assert stats.decompressions == 1

    def test_number_value(self):
        stats = EvaluationStats()
        assert number_value("4.5", stats) == 4.5
        assert number_value(True, stats) == 1.0
        assert number_value(7, stats) == 7.0
        with pytest.raises(QueryTypeError):
            number_value(NodeItem(0), stats)

    def test_decode_memoised(self):
        stats = EvaluationStats()
        item = items_for("alm")["date"]
        item.decode(stats)
        item.decode(stats)
        assert stats.decompressions == 1


class TestEffectiveBoolean:
    def test_empty_false(self):
        assert not effective_boolean([])

    def test_node_true(self):
        assert effective_boolean([NodeItem(3)])

    def test_atomics(self):
        assert effective_boolean(["x"])
        assert not effective_boolean([""])
        assert not effective_boolean([0.0])
        assert effective_boolean([0.5])
        assert not effective_boolean([False])

    def test_multi_atomic_raises(self):
        with pytest.raises(QueryTypeError):
            effective_boolean([1.0, 2.0])

    def test_multi_node_ok(self):
        assert effective_boolean([NodeItem(1), NodeItem(2)])


@settings(deadline=None, max_examples=50)
@given(st.lists(st.text(alphabet="abcde", min_size=1, max_size=6),
                min_size=2, max_size=8),
       st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
def test_compressed_comparison_matches_python(values, op):
    """ALM compressed comparisons == Python string comparisons."""
    stats = EvaluationStats()
    codec = train_codec("alm", values)
    items = [CompressedItem(codec.encode(v), codec) for v in values]
    for a, item_a in zip(values, items):
        for b, item_b in zip(values, items):
            expected = {"<": a < b, "<=": a <= b, ">": a > b,
                        ">=": a >= b, "=": a == b, "!=": a != b}[op]
            assert compare_items(op, item_a, item_b, stats) == expected

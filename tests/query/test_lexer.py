"""Tests for the query tokenizer."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query.lexer import Lexer, TokenType


def tokens_of(text):
    lexer = Lexer(text)
    out = []
    while True:
        token = lexer.next()
        if token.type == TokenType.EOF:
            return out
        out.append(token)


class TestScanning:
    def test_keywords_vs_names(self):
        tokens = tokens_of("for person in site")
        assert [t.type for t in tokens] == [
            TokenType.KEYWORD, TokenType.NAME, TokenType.KEYWORD,
            TokenType.NAME]

    def test_strings_both_quotes(self):
        tokens = tokens_of("\"double\" 'single'")
        assert [t.value for t in tokens] == ["double", "single"]

    def test_numbers(self):
        tokens = tokens_of("42 3.14 1e3 2.5e-2")
        assert [t.value for t in tokens] == ["42", "3.14", "1e3",
                                             "2.5e-2"]

    def test_two_char_punct_wins(self):
        tokens = tokens_of("// := != <= >=")
        assert [t.value for t in tokens] == [
            "DSLASH", "ASSIGN", "NE", "LE", "GE"]

    def test_variables(self):
        tokens = tokens_of("$item")
        assert tokens[0].value == "DOLLAR"
        assert tokens[1].value == "item"

    def test_comments_skipped(self):
        tokens = tokens_of("for (: a comment :) $x")
        assert [t.value for t in tokens] == ["for", "DOLLAR", "x"]

    def test_unterminated_comment(self):
        with pytest.raises(QuerySyntaxError):
            tokens_of("(: never closed")

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokens_of('"never closed')

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError):
            tokens_of("for # in")


class TestLookaheadAndRewind:
    def test_peek_does_not_consume(self):
        lexer = Lexer("a b")
        assert lexer.peek().value == "a"
        assert lexer.peek(1).value == "b"
        assert lexer.next().value == "a"

    def test_mark_reset(self):
        lexer = Lexer("alpha beta gamma")
        lexer.next()
        position = lexer.mark()
        assert lexer.next().value == "beta"
        lexer.reset(position)
        assert lexer.next().value == "beta"

    def test_expect_helpers(self):
        lexer = Lexer("for $x")
        lexer.expect_keyword("for")
        lexer.expect_punct("DOLLAR")
        assert lexer.expect_name().value == "x"

    def test_expect_failures(self):
        with pytest.raises(QuerySyntaxError):
            Lexer("let").expect_keyword("for")
        with pytest.raises(QuerySyntaxError):
            Lexer("for").expect_punct("DOLLAR")
        with pytest.raises(QuerySyntaxError):
            Lexer("123").expect_name()

"""Span nesting, attribute capture, and the disabled-mode no-op."""

import time

from repro.obs.tracer import NOOP_SPAN, Span, Tracer


class TestNesting:
    def test_spans_nest_by_dynamic_scope(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == \
            ["inner", "sibling"]
        assert outer.children[0].children == []

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == \
            ["first", "second"]

    def test_current_tracks_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("open") as span:
            assert tracer.current is span
        assert tracer.current is None

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert tracer.current is None
        assert tracer.roots[0].duration_ns >= 0

    def test_walk_is_preorder(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        names = [span.name for span in tracer.roots[0].walk()]
        assert names == ["a", "b", "c", "d"]


class TestTiming:
    def test_duration_measures_wall_time(self):
        tracer = Tracer()
        with tracer.span("sleep") as span:
            time.sleep(0.001)
        assert span.duration_ns >= 1_000_000  # at least 1 ms

    def test_open_span_reports_zero(self):
        span = Span("open", Tracer())
        assert span.duration_ns == 0

    def test_aggregate_counts_and_totals(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("op"):
                pass
        agg = tracer.aggregate()
        assert agg["op"]["count"] == 3
        assert agg["op"]["total_ns"] >= agg["op"]["max_ns"]


class TestAttributes:
    def test_attributes_captured_at_open(self):
        tracer = Tracer()
        with tracer.span("q", rows=5, kind="range") as span:
            pass
        assert span.attributes == {"rows": 5, "kind": "range"}

    def test_set_attribute_during_span(self):
        tracer = Tracer()
        with tracer.span("q") as span:
            span.set_attribute("rows", 42)
        assert span.to_dict()["attributes"] == {"rows": 42}

    def test_to_dict_includes_children(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        doc = tracer.to_dict()
        assert doc["spans"][0]["children"][0]["name"] == "child"


class TestDisabled:
    def test_disabled_returns_shared_noop(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x") is NOOP_SPAN
        assert tracer.span("y", rows=1) is NOOP_SPAN

    def test_noop_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x") as span:
            span.set_attribute("ignored", 1)
        assert tracer.roots == []
        assert NOOP_SPAN.attributes == {}
        assert NOOP_SPAN.duration_ns == 0

    def test_noop_span_cost_is_negligible(self):
        """Disabled-mode spans must be enter/exit of one shared object.

        100k open/close cycles in well under a second — the bound is
        deliberately loose (CI machines vary) but catches any
        accidental allocation or clock read on the disabled path.
        """
        tracer = Tracer(enabled=False)
        start = time.perf_counter()
        for _ in range(100_000):
            with tracer.span("hot"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 0.5

    def test_on_end_fires_per_close(self):
        ended = []
        tracer = Tracer(on_end=ended.append)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [span.name for span in ended] == ["b", "a"]

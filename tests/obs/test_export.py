"""Prometheus exposition: render/parse round trip."""

from repro.obs.export import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.metrics import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.add("cache.plan.hit", 7)
    registry.add("cache.plan.miss", 3)
    registry.set_gauge("slowlog.threshold_ms", 100.0)
    for value in (1.0, 2.0, 3.0):
        registry.observe("span.Execute", value)
    for value in (10.0, 20.0, 30.0, 40.0):
        registry.observe_window("slo.latency_ns.point", value)
    return registry


class TestRender:
    def test_families_and_values(self):
        text = render_prometheus(populated_registry())
        assert '# TYPE repro_counter counter' in text
        assert 'repro_counter{name="cache.plan.hit"} 7' in text
        assert 'repro_gauge{name="slowlog.threshold_ms"} 100' in text
        assert 'repro_histogram_count{name="span.Execute"} 3' in text
        assert 'repro_window_count{name="slo.latency_ns.point"} 4' \
            in text
        assert 'quantile="p95"' in text
        assert text.endswith("\n")

    def test_extra_gauges_do_not_touch_the_registry(self):
        registry = populated_registry()
        text = render_prometheus(
            registry, extra_gauges={"telemetry.uptime_s": 12.5})
        assert 'repro_gauge{name="telemetry.uptime_s"} 12.5' in text
        assert "telemetry.uptime_s" not in registry.gauges()

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.add('weird"name\\with\nstuff')
        text = render_prometheus(registry)
        parsed = parse_prometheus(text)
        assert parsed["counters"]['weird"name\\with\nstuff'] == 1

    def test_content_type_names_the_format_version(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestRoundTrip:
    def test_scrape_sees_what_a_reader_sees(self):
        registry = populated_registry()
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["counters"] == registry.counters()
        assert parsed["gauges"] == registry.gauges()
        hist = registry.histograms()["span.Execute"]
        scraped = parsed["histograms"]["span.Execute"]
        assert scraped["count"] == hist["count"]
        assert scraped["total"] == hist["total"]
        assert scraped["max"] == hist["max"]
        window = registry.windows()["slo.latency_ns.point"]
        scraped_window = parsed["windows"]["slo.latency_ns.point"]
        assert scraped_window["count"] == window["count"]
        assert scraped_window["p95"] == window["p95"]
        assert scraped_window["rate_per_s"] == window["rate_per_s"]

    def test_parser_skips_foreign_families(self):
        text = ("# HELP something else\n"
                "go_goroutines 42\n"
                'other_family{name="x"} 1\n'
                'repro_counter{name="kept"} 5\n')
        parsed = parse_prometheus(text)
        assert parsed["counters"] == {"kept": 5}

    def test_empty_registry_round_trips(self):
        parsed = parse_prometheus(
            render_prometheus(MetricsRegistry()))
        assert parsed == {"counters": {}, "gauges": {},
                          "histograms": {}, "windows": {}}


class TestShardLabels:
    """Per-shard folded names render as a shard= label, losslessly."""

    def test_shard_ordinal_lifted_into_label(self):
        registry = MetricsRegistry()
        registry.add("shard.0.session.executions", 41)
        registry.add("shard.12.session.executions", 7)
        registry.set_gauge("shard.3.shard.pid", 999)
        text = render_prometheus(registry)
        assert ('repro_counter{name="session.executions",'
                'shard="0"} 41') in text
        assert ('repro_counter{name="session.executions",'
                'shard="12"} 7') in text
        assert 'repro_gauge{name="shard.pid",shard="3"} 999' in text

    def test_parse_folds_shard_label_back(self):
        registry = MetricsRegistry()
        registry.add("shard.1.cache.plan.hit", 5)
        registry.add("coordinator.queries", 2)
        registry.observe("shard.1.span.Execute", 1.5)
        back = parse_prometheus(render_prometheus(registry))
        assert back["counters"]["shard.1.cache.plan.hit"] == 5
        assert back["counters"]["coordinator.queries"] == 2
        assert "shard.1.span.Execute" in back["histograms"]

    def test_non_ordinal_shard_prefix_stays_whole(self):
        registry = MetricsRegistry()
        registry.add("shard.total.queries", 4)  # not an ordinal
        text = render_prometheus(registry)
        assert 'repro_counter{name="shard.total.queries"} 4' in text

"""Counters, histograms and the registry."""

import json

import pytest

from repro.obs.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_adds(self):
        cell = Counter("x")
        assert cell.value == 0
        cell.add()
        cell.add(4)
        assert cell.value == 5


class TestHistogram:
    def test_empty_summary(self):
        hist = Histogram("h")
        assert hist.summary() == {"count": 0, "total": 0.0, "p50": 0.0,
                                  "p95": 0.0, "max": 0.0}

    def test_nearest_rank_percentiles(self):
        hist = Histogram("h")
        for value in range(1, 101):  # 1..100
            hist.observe(value)
        assert hist.percentile(0) == 1
        assert hist.percentile(100) == 100
        assert abs(hist.percentile(50) - 50) <= 1
        assert abs(hist.percentile(95) - 95) <= 1

    def test_summary_fields(self):
        hist = Histogram("h")
        for value in (3, 1, 2):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["total"] == 6
        assert summary["max"] == 3
        assert summary["p50"] == 2

    def test_order_independent(self):
        a, b = Histogram("a"), Histogram("b")
        for value in (5, 1, 9, 3):
            a.observe(value)
        for value in (9, 5, 3, 1):
            b.observe(value)
        assert a.summary() == {**b.summary()}


class TestMetricsRegistry:
    def test_counter_get_or_create_returns_same_cell(self):
        registry = MetricsRegistry()
        cell = registry.counter("hits")
        cell.add(2)
        assert registry.counter("hits") is cell
        assert registry.counters() == {"hits": 2}

    def test_add_shorthand(self):
        registry = MetricsRegistry()
        registry.add("hits")
        registry.add("hits", 3)
        assert registry.counter("hits").value == 4

    def test_histogram_get_or_create(self):
        registry = MetricsRegistry()
        registry.observe("lat", 10.0)
        registry.observe("lat", 20.0)
        assert registry.histogram("lat").count == 2
        assert registry.histograms()["lat"]["total"] == 30.0

    def test_to_dict_is_json_ready(self):
        registry = MetricsRegistry()
        registry.add("a", 1)
        registry.observe("b", 2.0)
        doc = json.loads(json.dumps(registry.to_dict()))
        assert doc["counters"] == {"a": 1}
        assert doc["histograms"]["b"]["count"] == 1

    def test_separate_registries_are_independent(self):
        one, two = MetricsRegistry(), MetricsRegistry()
        one.add("x", 7)
        assert two.counters() == {}


class TestGuards:
    def test_negative_counter_increment_raises(self):
        cell = Counter("hits")
        with pytest.raises(ValueError, match="monotonic"):
            cell.add(-1)
        assert cell.value == 0  # the bad increment did not land

    def test_registry_add_negative_raises(self):
        registry = MetricsRegistry()
        registry.add("hits", 2)
        with pytest.raises(ValueError, match="hits"):
            registry.add("hits", -2)
        assert registry.counter("hits").value == 2

    def test_zero_increment_allowed(self):
        cell = Counter("hits")
        cell.add(0)
        assert cell.value == 0

    def test_empty_histogram_percentile_raises(self):
        hist = Histogram("lat")
        with pytest.raises(ValueError, match="empty"):
            hist.percentile(50)

    def test_percentile_out_of_range_raises(self):
        hist = Histogram("lat")
        hist.observe(1.0)
        for bad in (-0.1, 100.1, 1000):
            with pytest.raises(ValueError, match=r"\[0, 100\]"):
                hist.percentile(bad)

    def test_error_names_the_metric(self):
        with pytest.raises(ValueError, match="span.ContAccess"):
            Histogram("span.ContAccess").percentile(95)

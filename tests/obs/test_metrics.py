"""Counters, histograms and the registry."""

import json

import pytest

from repro.obs.metrics import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_adds(self):
        cell = Counter("x")
        assert cell.value == 0
        cell.add()
        cell.add(4)
        assert cell.value == 5


class TestHistogram:
    def test_empty_summary(self):
        hist = Histogram("h")
        assert hist.summary() == {"count": 0, "total": 0.0, "p50": 0.0,
                                  "p95": 0.0, "max": 0.0}

    def test_nearest_rank_percentiles(self):
        hist = Histogram("h")
        for value in range(1, 101):  # 1..100
            hist.observe(value)
        assert hist.percentile(0) == 1
        assert hist.percentile(100) == 100
        assert abs(hist.percentile(50) - 50) <= 1
        assert abs(hist.percentile(95) - 95) <= 1

    def test_summary_fields(self):
        hist = Histogram("h")
        for value in (3, 1, 2):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["total"] == 6
        assert summary["max"] == 3
        assert summary["p50"] == 2

    def test_order_independent(self):
        a, b = Histogram("a"), Histogram("b")
        for value in (5, 1, 9, 3):
            a.observe(value)
        for value in (9, 5, 3, 1):
            b.observe(value)
        assert a.summary() == {**b.summary()}


class TestMetricsRegistry:
    def test_counter_get_or_create_returns_same_cell(self):
        registry = MetricsRegistry()
        cell = registry.counter("hits")
        cell.add(2)
        assert registry.counter("hits") is cell
        assert registry.counters() == {"hits": 2}

    def test_add_shorthand(self):
        registry = MetricsRegistry()
        registry.add("hits")
        registry.add("hits", 3)
        assert registry.counter("hits").value == 4

    def test_histogram_get_or_create(self):
        registry = MetricsRegistry()
        registry.observe("lat", 10.0)
        registry.observe("lat", 20.0)
        assert registry.histogram("lat").count == 2
        assert registry.histograms()["lat"]["total"] == 30.0

    def test_to_dict_is_json_ready(self):
        registry = MetricsRegistry()
        registry.add("a", 1)
        registry.observe("b", 2.0)
        doc = json.loads(json.dumps(registry.to_dict()))
        assert doc["counters"] == {"a": 1}
        assert doc["histograms"]["b"]["count"] == 1

    def test_separate_registries_are_independent(self):
        one, two = MetricsRegistry(), MetricsRegistry()
        one.add("x", 7)
        assert two.counters() == {}


class TestGuards:
    def test_negative_counter_increment_raises(self):
        cell = Counter("hits")
        with pytest.raises(ValueError, match="monotonic"):
            cell.add(-1)
        assert cell.value == 0  # the bad increment did not land

    def test_registry_add_negative_raises(self):
        registry = MetricsRegistry()
        registry.add("hits", 2)
        with pytest.raises(ValueError, match="hits"):
            registry.add("hits", -2)
        assert registry.counter("hits").value == 2

    def test_zero_increment_allowed(self):
        cell = Counter("hits")
        cell.add(0)
        assert cell.value == 0

    def test_empty_histogram_percentile_raises(self):
        hist = Histogram("lat")
        with pytest.raises(ValueError, match="empty"):
            hist.percentile(50)

    def test_percentile_out_of_range_raises(self):
        hist = Histogram("lat")
        hist.observe(1.0)
        for bad in (-0.1, 100.1, 1000):
            with pytest.raises(ValueError, match=r"\[0, 100\]"):
                hist.percentile(bad)

    def test_error_names_the_metric(self):
        with pytest.raises(ValueError, match="span.ContAccess"):
            Histogram("span.ContAccess").percentile(95)


class TestBoundedHistogram:
    def test_exact_aggregates_beyond_cap(self):
        hist = Histogram("h", sample_cap=100)
        for value in range(1, 1001):  # 1..1000, 10x the cap
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 1000
        assert summary["total"] == sum(range(1, 1001))
        assert summary["max"] == 1000
        assert len(hist.values) == 100  # memory stays bounded

    def test_reservoir_percentiles_are_plausible(self):
        hist = Histogram("h", sample_cap=256)
        for value in range(1, 10_001):
            hist.observe(value)
        # reservoir sampling keeps a uniform subsample: the median
        # estimate lands in the middle half of the range.
        assert 2500 <= hist.percentile(50) <= 7500

    def test_exact_below_cap(self):
        hist = Histogram("h", sample_cap=1000)
        for value in range(1, 101):
            hist.observe(value)
        assert abs(hist.percentile(50) - 50) <= 1

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError, match="sample cap"):
            Histogram("h", sample_cap=0)

    def test_absorb_preserves_exact_aggregates(self):
        a, b = Histogram("a", sample_cap=8), Histogram("b",
                                                       sample_cap=8)
        for value in range(1, 101):
            a.observe(value)
        for value in range(1, 51):
            b.observe(value)
        a.absorb(*b.state())
        assert a.summary()["count"] == 150
        assert a.summary()["total"] == sum(range(1, 101)) \
            + sum(range(1, 51))
        assert len(a.values) <= 8


class TestGauge:
    def test_set_add_value(self):
        from repro.obs.metrics import Gauge
        gauge = Gauge("bytes")
        assert gauge.value == 0.0
        gauge.set(10.5)
        assert gauge.value == 10.5
        gauge.add(-3.5)
        assert gauge.value == 7.0

    def test_registry_gauges(self):
        registry = MetricsRegistry()
        registry.set_gauge("threshold_ms", 100.0)
        assert registry.gauge("threshold_ms") \
            is registry.gauge("threshold_ms")
        assert registry.gauges() == {"threshold_ms": 100.0}


class _FakeClock:
    """A controllable monotonic clock for window tests."""

    def __init__(self, start_ns=0):
        self.ns = start_ns

    def __call__(self):
        return self.ns

    def advance_s(self, seconds):
        self.ns += int(seconds * 1_000_000_000)


class TestWindowedHistogram:
    def _window(self, **kwargs):
        from repro.obs.metrics import WindowedHistogram
        clock = _FakeClock(1_000_000_000)
        kwargs.setdefault("window_s", 60.0)
        kwargs.setdefault("buckets", 12)
        return WindowedHistogram("w", clock=clock, **kwargs), clock

    def test_empty_summary(self):
        window, _ = self._window()
        summary = window.summary()
        assert summary["count"] == 0
        assert summary["rate_per_s"] == 0.0
        assert summary["p50"] is None

    def test_observations_roll_out_of_the_window(self):
        window, clock = self._window()
        window.observe(100.0)
        window.observe(200.0)
        assert window.summary()["count"] == 2
        clock.advance_s(30.0)
        window.observe(300.0)
        assert window.summary()["count"] == 3
        clock.advance_s(45.0)  # first two are now > 60 s old
        summary = window.summary()
        assert summary["count"] == 1
        assert summary["max"] == 300.0
        clock.advance_s(120.0)  # everything expired
        assert window.summary()["count"] == 0

    def test_percentiles_over_live_buckets(self):
        window, clock = self._window()
        for value in range(1, 101):
            window.observe(float(value))
            clock.advance_s(0.25)  # spread across buckets, ~25 s
        summary = window.summary()
        assert summary["count"] == 100
        assert summary["p50"] is not None
        assert 40 <= summary["p50"] <= 60
        assert summary["p99"] >= summary["p95"] >= summary["p50"]

    def test_rate_per_s(self):
        window, clock = self._window()
        for _ in range(120):
            window.observe(1.0)
            clock.advance_s(0.5)  # 2 observations per second, 60 s
        rate = window.summary()["rate_per_s"]
        assert 1.5 <= rate <= 2.5

    def test_bucket_memory_is_bounded(self):
        window, clock = self._window(bucket_sample_cap=16)
        for value in range(10_000):
            window.observe(float(value))
        assert window.summary()["count"] == 10_000
        total_samples = sum(len(bucket.samples)
                            for bucket in window._ring)
        assert total_samples <= 12 * 16

    def test_merge_aligns_epochs(self):
        from repro.obs.metrics import WindowedHistogram
        clock = _FakeClock(1_000_000_000)
        a = WindowedHistogram("a", window_s=60.0, buckets=12,
                              clock=clock)
        b = WindowedHistogram("b", window_s=60.0, buckets=12,
                              clock=clock)
        a.observe(10.0)
        b.observe(20.0)
        clock.advance_s(10.0)
        b.observe(30.0)
        a.merge(b)
        summary = a.summary()
        assert summary["count"] == 3
        assert summary["max"] == 30.0


class TestRegistryWindows:
    def test_observe_window_and_windows(self):
        registry = MetricsRegistry()
        registry.observe_window("lat", 5.0)
        registry.observe_window("lat", 15.0)
        summary = registry.windows()["lat"]
        assert summary["count"] == 2
        assert summary["max"] == 15.0

    def test_to_dict_carries_all_four_kinds(self):
        registry = MetricsRegistry()
        registry.add("c")
        registry.observe("h", 1.0)
        registry.set_gauge("g", 2.0)
        registry.observe_window("w", 3.0)
        doc = json.loads(json.dumps(registry.to_dict()))
        assert doc["counters"] == {"c": 1}
        assert doc["gauges"] == {"g": 2.0}
        assert "h" in doc["histograms"]
        assert doc["windows"]["w"]["count"] == 1

    def test_merge_folds_gauges_and_windows(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.add("hits", 1)
        b.add("hits", 2)
        b.set_gauge("g", 9.0)
        b.observe_window("w", 4.0)
        for value in range(1, 101):
            b.observe("h", value)
        a.merge(b)
        assert a.counter("hits").value == 3
        assert a.gauges()["g"] == 9.0
        assert a.windows()["w"]["count"] == 1
        assert a.histograms()["h"]["count"] == 100

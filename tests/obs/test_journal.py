"""Tests for the append-only workload journal."""

import json
import os

import pytest

from repro.obs.journal import (
    JOURNAL_SUFFIX,
    WorkloadJournal,
    default_journal_path,
)


@pytest.fixture
def journal(tmp_path):
    return WorkloadJournal(tmp_path / "doc.workload.jsonl")


class TestAppend:
    def test_appends_one_line_per_record(self, journal):
        journal.append({"query": "q1", "ts": "2026-01-01T00:00:00"})
        journal.append({"query": "q2", "ts": "2026-01-02T00:00:00"})
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["query"] == "q1"

    def test_lines_have_sorted_keys(self, journal):
        journal.append({"zeta": 1, "alpha": 2})
        line = journal.path.read_text().splitlines()[0]
        keys = list(json.loads(line))
        assert keys == sorted(keys)

    def test_write_is_atomic_no_temp_left_behind(self, journal):
        journal.append({"query": "q"})
        siblings = os.listdir(journal.path.parent)
        assert not [name for name in siblings
                    if name.endswith(".tmp")]

    def test_len_and_exists(self, journal):
        assert not journal.exists()
        assert len(journal) == 0
        journal.append({"query": "q"})
        assert journal.exists()
        assert len(journal) == 1


class TestHandleReuse:
    def test_many_appends_one_open(self, journal):
        for i in range(50):
            journal.append({"query": f"q{i}"})
        assert journal.opens == 1
        assert len(journal) == 50

    def test_close_then_append_reopens_lazily(self, journal):
        journal.append({"query": "before"})
        journal.close()
        journal.append({"query": "after"})
        assert journal.opens == 2
        assert [r["query"] for r in journal.records()] == \
            ["before", "after"]

    def test_close_is_idempotent(self, journal):
        journal.append({"query": "q"})
        journal.close()
        journal.close()
        assert journal.opens == 1

    def test_context_manager_closes(self, tmp_path):
        with WorkloadJournal(tmp_path / "ctx.jsonl") as journal:
            journal.append({"query": "q"})
            assert journal._handle is not None
        assert journal._handle is None

    def test_records_visible_while_handle_open(self, journal):
        # append() flushes, so readers see the line immediately —
        # no close() needed between write and read.
        journal.append({"query": "live"})
        assert journal._handle is not None
        assert [r["query"] for r in journal.records()] == ["live"]

    def test_concurrent_appends_never_tear_lines(self, journal):
        import json as json_module
        import threading

        def worker(tag):
            for i in range(100):
                journal.append({"query": f"{tag}-{i}",
                                "pad": "x" * 200})

        pool = [threading.Thread(target=worker, args=(t,))
                for t in range(4)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 400
        for line in lines:
            json_module.loads(line)  # every line is complete JSON
        assert journal.opens == 1


class TestRecords:
    def test_roundtrip(self, journal):
        journal.append({"query": "q", "wall_ns": 5})
        records = list(journal.records())
        assert records == [{"query": "q", "wall_ns": 5}]

    def test_skips_blank_and_garbage_lines(self, journal):
        journal.append({"query": "good"})
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write("\n{not json}\n[1, 2]\n")
        journal.append({"query": "also good"})
        queries = [r["query"] for r in journal.records()]
        assert queries == ["good", "also good"]

    def test_since_filters_lexicographically(self, journal):
        journal.append({"query": "old", "ts": "2026-01-01T00:00:00"})
        journal.append({"query": "new", "ts": "2026-06-01T00:00:00"})
        queries = [r["query"] for r in
                   journal.records(since="2026-03-01")]
        assert queries == ["new"]

    def test_missing_file_yields_nothing(self, tmp_path):
        journal = WorkloadJournal(tmp_path / "absent.jsonl")
        assert list(journal.records()) == []


class TestDefaultPath:
    def test_sibling_with_suffix(self, tmp_path):
        repository = tmp_path / "auction.xqrepo"
        path = default_journal_path(repository)
        assert path.parent == tmp_path
        assert path.name == "auction.xqrepo" + JOURNAL_SUFFIX

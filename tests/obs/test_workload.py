"""Tests for live workload capture (recorder, records, engine hook)."""

import json

import pytest

from repro.obs import runtime
from repro.obs.journal import WorkloadJournal
from repro.obs.workload import (
    WorkloadCapture,
    WorkloadRecord,
    WorkloadRecorder,
)
from repro.query.engine import QueryEngine
from repro.storage.loader import load_document

XML = "<site><people>%s</people></site>" % "".join(
    f"<person><name>Person {i:03d}</name><age>{20 + i % 40}</age>"
    "</person>" for i in range(30))

EQ_QUERY = ('for $p in /site/people/person '
            'where $p/name/text() = "Person 007" '
            'return $p/name/text()')
INEQ_QUERY = ('for $p in /site/people/person '
              'where $p/name/text() > "Person 025" '
              'return $p/name/text()')


@pytest.fixture
def repository():
    return load_document(XML)


@pytest.fixture
def journal(tmp_path):
    return WorkloadJournal(tmp_path / "doc.workload.jsonl")


class TestWorkloadCapture:
    def test_accumulates_per_container(self):
        capture = WorkloadCapture()
        capture.record_access("/a/#text", "scans")
        capture.record_access("/a/#text", "scans")
        capture.record_access("/b/#text", "record_reads", n=3)
        capture.record_predicate("/a/#text", "eq")
        assert capture.containers == {
            "/a/#text": {"scans": 2, "eq": 1},
            "/b/#text": {"record_reads": 3},
        }


class TestWorkloadRecord:
    def test_dict_roundtrip(self):
        record = WorkloadRecord(
            query="q", ts="2026-01-01T00:00:00", wall_ns=42,
            containers={"/a/#text": {"eq": 1}},
            predicates=[{"kind": "eq", "left": "/a/#text",
                         "right": None}],
            counters={"compressed_comparisons": 3,
                      "decompressed_comparisons": 1})
        back = WorkloadRecord.from_dict(record.to_dict())
        assert back == record

    def test_compressed_ratio(self):
        record = WorkloadRecord(
            query="q", ts="", wall_ns=0,
            counters={"compressed_comparisons": 3,
                      "decompressed_comparisons": 1})
        assert record.compressed_ratio == pytest.approx(0.75)

    def test_compressed_ratio_none_without_comparisons(self):
        record = WorkloadRecord(query="q", ts="", wall_ns=0)
        assert record.compressed_ratio is None


class TestRecorderWithEngine:
    def test_journals_one_record_per_execute(self, repository,
                                             journal):
        recorder = WorkloadRecorder(journal)
        engine = QueryEngine(repository, recorder=recorder)
        engine.execute(EQ_QUERY)
        engine.execute(INEQ_QUERY)
        assert recorder.records_written == 2
        assert len(journal) == 2

    def test_record_names_probed_container(self, repository, journal):
        engine = QueryEngine(repository,
                             recorder=WorkloadRecorder(journal))
        engine.execute(EQ_QUERY)
        [record] = journal.records()
        activity = record["containers"]
        assert "/site/people/person/name/#text" in activity
        assert activity["/site/people/person/name/#text"]["eq"] == 1

    def test_static_predicates_extracted(self, repository, journal):
        engine = QueryEngine(repository,
                             recorder=WorkloadRecorder(journal))
        engine.execute(INEQ_QUERY)
        [record] = journal.records()
        assert {"kind": "ineq",
                "left": "/site/people/person/name/#text",
                "right": None} in record["predicates"]

    def test_counters_and_wall_time_present(self, repository,
                                            journal):
        engine = QueryEngine(repository,
                             recorder=WorkloadRecorder(journal))
        engine.execute(EQ_QUERY)
        [record] = journal.records()
        assert record["wall_ns"] > 0
        assert "decompressions" in record["counters"]
        assert record["ts"]  # ISO timestamp

    def test_workload_metrics_mirrored(self, repository, journal):
        engine = QueryEngine(repository,
                             recorder=WorkloadRecorder(journal))
        result = engine.execute(EQ_QUERY)
        metrics = result.telemetry.metrics
        assert metrics.counter("workload.records").value == 1
        assert metrics.counter("workload.predicates.eq").value == 1

    def test_results_unaffected_by_recording(self, repository,
                                             journal, tmp_path):
        plain = QueryEngine(load_document(XML))
        recorded = QueryEngine(repository,
                               recorder=WorkloadRecorder(journal))
        for query in (EQ_QUERY, INEQ_QUERY):
            assert recorded.execute(query).items == \
                plain.execute(query).items

    def test_journal_lines_are_json(self, repository, journal):
        engine = QueryEngine(repository,
                             recorder=WorkloadRecorder(journal))
        engine.execute(EQ_QUERY)
        for line in journal.path.read_text().splitlines():
            assert isinstance(json.loads(line), dict)


class TestDisabledRecorder:
    def test_no_recorder_no_journal_io(self, repository, tmp_path):
        engine = QueryEngine(repository)
        engine.execute(EQ_QUERY)
        assert list(tmp_path.iterdir()) == []

    def test_disabled_recorder_writes_nothing(self, repository,
                                              journal):
        recorder = WorkloadRecorder(journal, enabled=False)
        engine = QueryEngine(repository, recorder=recorder)
        engine.execute(EQ_QUERY)
        assert recorder.records_written == 0
        assert not journal.exists()

    def test_recorder_global_restored_after_run(self, repository,
                                                journal):
        engine = QueryEngine(repository,
                             recorder=WorkloadRecorder(journal))
        engine.execute(EQ_QUERY)
        assert runtime.RECORDER is None


class TestRuntimeRecording:
    def test_recording_sets_and_restores_global(self):
        capture = WorkloadCapture()
        assert runtime.RECORDER is None
        with runtime.recording(capture) as active:
            assert active is capture
            assert runtime.RECORDER is capture
        assert runtime.RECORDER is None

    def test_recording_is_reentrant(self):
        outer, inner = WorkloadCapture(), WorkloadCapture()
        with runtime.recording(outer):
            with runtime.recording(inner):
                assert runtime.RECORDER is inner
            assert runtime.RECORDER is outer

    def test_restores_on_exception(self):
        capture = WorkloadCapture()
        with pytest.raises(RuntimeError):
            with runtime.recording(capture):
                raise RuntimeError("boom")
        assert runtime.RECORDER is None

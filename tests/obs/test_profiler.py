"""Tests for the span-attributed sampling profiler."""

import sys
import threading
import time

import pytest

from repro.obs import tracer as tracer_module
from repro.obs.profiler import (
    ProfileOptions,
    SpanProfile,
    SpanProfiler,
    coerce_profile,
    profiled,
)
from repro.obs.telemetry import Telemetry
from repro.query.options import ExecutionOptions
from repro.service.session import Session
from repro.storage.loader import load_document
from repro.util.clock import Stopwatch, ns_to_s

DOC = """
<library>
  <book isbn="1"><title>Dune</title><price>9.99</price></book>
  <book isbn="2"><title>Foundation</title><price>7.5</price></book>
  <book isbn="3"><title>Hyperion</title><price>12.0</price></book>
  <book isbn="4"><title>Ubik</title><price>8.25</price></book>
</library>
"""

SCAN_QUERY = ("for $b in /library/book "
              "where $b/price > 8.0 return $b/title/text()")


@pytest.fixture(scope="module")
def repository():
    return load_document(DOC)


def busy_ms(milliseconds: float) -> None:
    """Burn CPU (not sleep — sleeping threads still sample, but we
    want deterministic innermost frames)."""
    deadline = time.perf_counter() + milliseconds / 1000.0
    x = 0
    while time.perf_counter() < deadline:
        x += 1


class TestCoerce:
    def test_off(self):
        assert coerce_profile(None) is None
        assert coerce_profile(False) is None

    def test_true_gives_defaults(self):
        options = coerce_profile(True)
        assert isinstance(options, ProfileOptions)
        assert options.hz == 97.0

    def test_passthrough(self):
        options = ProfileOptions(hz=250.0)
        assert coerce_profile(options) is options

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            coerce_profile("yes")


class TestAttribution:
    def test_samples_land_on_open_spans(self):
        telemetry = Telemetry(enabled=True)
        profiler = SpanProfiler(ProfileOptions(hz=500.0))
        with profiler.attach(telemetry.tracer):
            with telemetry.span("Outer"):
                with telemetry.span("Inner"):
                    busy_ms(80)
        profile = profiler.profile
        assert profile.ticks > 0
        assert profile.attributed > 0
        # every sample saw the Outer->Inner stack
        assert ("Outer", "Inner") in profile.span_samples
        shares = {row["span"]: row for row in profile.shares()}
        assert shares["Inner"]["self_share"] > 0
        # Outer covers everything Inner does
        assert shares["Outer"]["total_share"] >= \
            shares["Inner"]["total_share"]

    def test_self_shares_sum_to_at_most_one(self):
        telemetry = Telemetry(enabled=True)
        profiler = SpanProfiler(ProfileOptions(hz=500.0))
        with profiler.attach(telemetry.tracer):
            with telemetry.span("A"):
                busy_ms(30)
                with telemetry.span("B"):
                    busy_ms(30)
        total = sum(row["self_share"]
                    for row in profiler.profile.shares())
        assert 0.0 < total <= 1.0 + 1e-9

    def test_folded_lines_start_with_span_path(self):
        telemetry = Telemetry(enabled=True)
        profiler = SpanProfiler(ProfileOptions(hz=500.0))
        with profiler.attach(telemetry.tracer):
            with telemetry.span("Hot"):
                busy_ms(60)
        lines = profiler.profile.folded_lines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack.startswith("Hot")
            assert int(count) >= 1
        # the innermost python frame of the busiest stack is the
        # busy loop itself
        assert any("busy_ms" in line for line in lines)

    def test_registry_cleared_after_detach(self):
        telemetry = Telemetry(enabled=True)
        profiler = SpanProfiler(ProfileOptions(hz=500.0))
        with profiler.attach(telemetry.tracer):
            with telemetry.span("S"):
                busy_ms(10)
        assert tracer_module.active_span_paths() == {}

    def test_write_folded(self, tmp_path):
        telemetry = Telemetry(enabled=True)
        profiler = SpanProfiler(ProfileOptions(hz=500.0))
        with profiler.attach(telemetry.tracer):
            with telemetry.span("S"):
                busy_ms(50)
        path = profiler.profile.write_folded(tmp_path / "out.folded")
        text = path.read_text(encoding="utf-8")
        assert text.strip()
        assert text.splitlines()[0].startswith("S")


class TestExecuteManyAttribution:
    def test_four_workers_each_attribute_to_their_own_stack(self):
        """Samples land on the right thread's span stack: four
        threads each open a distinctly-named span and burn CPU; every
        thread's span must collect samples, and no sampled path may
        mix two workers' names."""
        profiler = SpanProfiler(ProfileOptions(hz=500.0))
        names = [f"Worker{i}" for i in range(4)]

        def work(name: str) -> None:
            telemetry = Telemetry(enabled=True)
            with telemetry.span(name):
                busy_ms(150)

        with profiler.attach():
            threads = [threading.Thread(target=work, args=(n,))
                       for n in names]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        profile = profiler.profile
        self_counts = profile.self_samples()
        for name in names:
            assert self_counts.get(name, 0) > 0, \
                f"{name} got no samples"
        for path in profile.span_samples:
            workers = [n for n in path if n.startswith("Worker")]
            assert len(set(workers)) <= 1, \
                f"mixed worker spans on one path: {path}"

    def test_session_execute_many_profiles_per_query_spans(self,
                                                           repository):
        """The real serving path: execute_many with 4 workers under
        one attached profiler attributes samples to engine spans."""
        session = Session(repository)
        queries = [SCAN_QUERY] * 12
        profiler = SpanProfiler(ProfileOptions(hz=997.0))
        with profiler.attach():
            for _ in range(40):
                session.execute_many(
                    queries,
                    options=ExecutionOptions(telemetry_enabled=True),
                    max_workers=4)
        profile = profiler.profile
        assert profile.ticks > 0
        if profile.attributed:  # timing-dependent on slow machines
            assert any("Execute" in path
                       for path in profile.span_samples)


class TestOverhead:
    def test_disabled_path_adds_under_5_percent(self, repository):
        """With no profiler attached the tracer's registry update is
        gated on the attach counter, so a scan-heavy query must not
        slow down measurably.  Measured with a generous margin: the
        run with telemetry *fully off* is the baseline, and the
        telemetry-on-but-profiler-off run has its own cost, so we
        compare telemetry-on-no-profiler against itself before/after
        a profile attach/detach cycle (the residue the gate is
        about)."""
        session = Session(repository)
        options = ExecutionOptions(telemetry_enabled=True)

        def timed_run(repeat: int = 60) -> float:
            with Stopwatch() as watch:
                for _ in range(repeat):
                    session.execute(SCAN_QUERY, options).items
            return ns_to_s(watch.ns)

        timed_run(10)  # warm caches / JIT-ish effects
        before = min(timed_run() for _ in range(3))

        # attach and detach a profiler; afterwards the disabled path
        # must be as fast as before (no residue left behind)
        profiler = SpanProfiler(ProfileOptions(hz=500.0))
        with profiler.attach():
            session.execute(SCAN_QUERY, options).items
        after = min(timed_run() for _ in range(3))

        # generous margin: 5% target, asserted at 50% to stay robust
        # on loaded CI machines — catches the pathological case
        # (orders-of-magnitude residue), not scheduler noise.
        assert after <= before * 1.5, \
            f"disabled-profiler path slowed down: {before:.4f}s -> " \
            f"{after:.4f}s"
        assert tracer_module.active_span_paths() == {}


class TestAllocations:
    def test_tracemalloc_deltas_per_span(self):
        telemetry = Telemetry(enabled=True)
        profiler = SpanProfiler(
            ProfileOptions(hz=200.0, trace_allocations=True))
        with profiler.attach(telemetry.tracer):
            with telemetry.span("Alloc"):
                blob = [bytes(1024) for _ in range(512)]
        del blob
        stats = profiler.profile.allocations.get("Alloc")
        assert stats is not None
        assert stats["count"] == 1
        assert stats["total_bytes"] > 256 * 1024

    def test_trace_allocations_requires_tracer(self):
        profiler = SpanProfiler(
            ProfileOptions(trace_allocations=True))
        with pytest.raises(ValueError):
            with profiler.attach():
                pass


class TestEngineIntegration:
    def test_execution_option_attaches_profile_to_telemetry(
            self, repository):
        session = Session(repository)
        result = session.execute(
            SCAN_QUERY,
            ExecutionOptions(telemetry_enabled=True,
                             profile=ProfileOptions(hz=500.0)))
        telemetry = result.telemetry
        assert telemetry is not None
        assert isinstance(telemetry.profile, SpanProfile)
        assert telemetry.profile.hz == 500.0
        payload = telemetry.to_dict()
        assert "profile" in payload
        assert payload["profile"]["hz"] == 500.0

    def test_profile_true_implies_telemetry(self, repository):
        session = Session(repository)
        result = session.execute(SCAN_QUERY,
                                 ExecutionOptions(profile=True))
        assert result.telemetry is not None
        assert result.telemetry.profile is not None

    def test_no_profile_no_attribute(self, repository):
        session = Session(repository)
        result = session.execute(SCAN_QUERY,
                                 ExecutionOptions(telemetry_enabled=True))
        assert result.telemetry.profile is None


class TestProfiledHelper:
    def test_off_yields_none(self):
        telemetry = Telemetry(enabled=True)
        with profiled(telemetry.tracer, None) as profiler:
            assert profiler is None

    def test_on_yields_profiler(self):
        telemetry = Telemetry(enabled=True)
        with profiled(telemetry.tracer, True) as profiler:
            assert isinstance(profiler, SpanProfiler)


class TestLifecycle:
    """``attach`` must undo every setup step no matter how it exits:
    the lowered GIL switch interval and the process-wide registry
    attach counter are global residue that would tax every later
    query."""

    def test_body_exception_restores_interval_and_registry(self):
        telemetry = Telemetry(enabled=True)
        profiler = SpanProfiler(ProfileOptions(hz=500.0))
        interval = sys.getswitchinterval()
        with pytest.raises(RuntimeError, match="boom"):
            with profiler.attach(telemetry.tracer):
                assert sys.getswitchinterval() < interval
                raise RuntimeError("boom")
        assert sys.getswitchinterval() == interval
        assert tracer_module._PROFILING == 0
        assert tracer_module.active_span_paths() == {}
        assert profiler._thread is None

    def test_thread_start_failure_cleans_up(self, monkeypatch):
        profiler = SpanProfiler(ProfileOptions(hz=500.0))
        interval = sys.getswitchinterval()

        def refuse(self):
            raise RuntimeError("can't start new thread")

        monkeypatch.setattr(threading.Thread, "start", refuse)
        with pytest.raises(RuntimeError,
                           match="can't start new thread"):
            with profiler.attach():
                pass
        assert sys.getswitchinterval() == interval
        assert tracer_module._PROFILING == 0
        assert profiler._thread is None

    def test_detach_survives_sampler_dying_mid_run(self, monkeypatch):
        profiler = SpanProfiler(ProfileOptions(hz=500.0))
        interval = sys.getswitchinterval()

        def die() -> None:
            return  # sampler exits instantly, as if it crashed

        monkeypatch.setattr(profiler, "_sample_loop", die)
        with profiler.attach():
            # give the doomed sampler time to crash before detach
            deadline = time.perf_counter() + 5.0
            while profiler._thread.is_alive() \
                    and time.perf_counter() < deadline:
                time.sleep(0.005)
            assert not profiler._thread.is_alive()
        assert sys.getswitchinterval() == interval
        assert tracer_module._PROFILING == 0
        assert profiler._thread is None

    def test_alloc_hooks_detached_on_body_exception(self):
        telemetry = Telemetry(enabled=True)
        tracer = telemetry.tracer
        prev_start, prev_end = tracer.on_start, tracer.on_end
        import tracemalloc
        was_tracing = tracemalloc.is_tracing()
        profiler = SpanProfiler(
            ProfileOptions(hz=500.0, trace_allocations=True))
        with pytest.raises(RuntimeError):
            with profiler.attach(tracer):
                raise RuntimeError("boom")
        assert tracer.on_start is prev_start
        assert tracer.on_end is prev_end
        assert tracemalloc.is_tracing() == was_tracing

    def test_sampler_thread_is_daemon(self):
        profiler = SpanProfiler(ProfileOptions(hz=500.0))
        with profiler.attach():
            assert profiler._thread is not None
            assert profiler._thread.daemon


class TestRenderText:
    def test_empty_profile_message(self):
        profile = SpanProfile(hz=97.0)
        assert "no samples" in profile.render_text()

    def test_table_contains_spans(self):
        telemetry = Telemetry(enabled=True)
        profiler = SpanProfiler(ProfileOptions(hz=500.0))
        with profiler.attach(telemetry.tracer):
            with telemetry.span("Render"):
                busy_ms(60)
        text = profiler.profile.render_text()
        assert "Render" in text
        assert "self%" in text

"""The Telemetry bundle: span histograms, JSON export, activation."""

import json

from repro.obs import runtime
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry


class TestSpanHistograms:
    def test_closed_spans_feed_histograms(self):
        telemetry = Telemetry(enabled=True)
        for _ in range(2):
            with telemetry.span("ContScan"):
                pass
        summary = telemetry.metrics.histograms()["span.ContScan"]
        assert summary["count"] == 2

    def test_operator_profile_strips_prefix(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.span("HashJoin.build"):
            pass
        telemetry.metrics.observe("other.metric", 1.0)
        profile = telemetry.operator_profile()
        assert "HashJoin.build" in profile
        assert "other.metric" not in profile

    def test_disabled_records_no_spans(self):
        telemetry = Telemetry(enabled=False)
        with telemetry.span("ContScan"):
            pass
        assert telemetry.metrics.histograms() == {}


class TestSharedRegistry:
    def test_external_registry_is_used_directly(self):
        registry = MetricsRegistry()
        telemetry = Telemetry(enabled=True, metrics=registry)
        assert telemetry.metrics is registry
        with telemetry.span("X"):
            pass
        assert "span.X" in registry.histograms()


class TestJsonExport:
    def test_document_shape(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.span("Execute", query="/a/b"):
            telemetry.metrics.add("decompressions", 3)
        doc = json.loads(telemetry.to_json(indent=2))
        assert sorted(doc) == ["diagnostics", "enabled", "metrics",
                               "operators", "trace"]
        assert doc["enabled"] is True
        assert doc["metrics"]["counters"]["decompressions"] == 3
        assert doc["trace"]["spans"][0]["name"] == "Execute"
        assert doc["trace"]["spans"][0]["attributes"]["query"] == "/a/b"

    def test_operators_section_matches_profile(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.span("Parent"):
            pass
        doc = json.loads(telemetry.to_json())
        assert doc["operators"]["Parent"]["count"] == 1


class TestRuntimeActivation:
    def test_activated_sets_and_restores(self):
        telemetry = Telemetry(enabled=True)
        assert runtime.ACTIVE is None
        with runtime.activated(telemetry):
            assert runtime.ACTIVE is telemetry
        assert runtime.ACTIVE is None

    def test_disabled_telemetry_deactivates(self):
        with runtime.activated(Telemetry(enabled=False)):
            assert runtime.ACTIVE is None

    def test_reentrant_restores_previous(self):
        outer = Telemetry(enabled=True)
        inner = Telemetry(enabled=True)
        with runtime.activated(outer):
            with runtime.activated(inner):
                assert runtime.ACTIVE is inner
            assert runtime.ACTIVE is outer

    def test_helpers_report_to_active_registry(self):
        telemetry = Telemetry(enabled=True)
        with runtime.activated(telemetry):
            runtime.add("container.scans", 2)
            runtime.record_codec("decode", "alm", 10, 25)
            runtime.record_page_reads(3)
        counters = telemetry.metrics.counters()
        assert counters["container.scans"] == 2
        assert counters["codec.alm.decode.calls"] == 1
        assert counters["codec.alm.decode.compressed_bytes"] == 10
        assert counters["codec.alm.decode.plain_chars"] == 25
        assert counters["btree.page_reads"] == 3

    def test_helpers_are_silent_when_inactive(self):
        runtime.add("nothing")  # must not raise, must not record
        assert runtime.ACTIVE is None


class TestDeterministicExport:
    def test_json_keys_sorted_at_every_level(self):
        telemetry = Telemetry(enabled=True)
        telemetry.metrics.add("zeta", 1)
        telemetry.metrics.add("alpha", 2)
        with telemetry.span("B"):
            pass
        with telemetry.span("A"):
            pass
        text = telemetry.to_json()
        doc = json.loads(text)
        assert list(doc) == sorted(doc)
        assert list(doc["metrics"]["counters"]) == ["alpha", "zeta"]
        assert list(doc["operators"]) == ["A", "B"]

    def test_operator_profile_order_independent_of_span_order(self):
        def run(names):
            telemetry = Telemetry(enabled=True)
            for name in names:
                with telemetry.span(name):
                    pass
            return list(telemetry.operator_profile())

        assert run(["C", "A", "B"]) == run(["B", "C", "A"]) \
            == ["A", "B", "C"]

    def test_identical_runs_export_identically(self):
        def run():
            telemetry = Telemetry(enabled=False)
            telemetry.metrics.add("decompressions", 5)
            telemetry.metrics.observe("span.Select", 100.0)
            return telemetry.to_json(indent=2)

        assert run() == run()

    def test_default_str_keeps_foreign_values_serializable(self):
        telemetry = Telemetry(enabled=True)
        with telemetry.span("Op", where=object()):
            pass
        json.loads(telemetry.to_json())  # must not raise

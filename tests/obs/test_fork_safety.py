"""Fork-safety regressions: journals crossing ``fork`` boundaries.

A child process inheriting an open :class:`WorkloadJournal` (or the
slow-query log built on it) used to share the parent's buffered text
handle — concurrent appends interleaved mid-line and a partial line
buffered at fork time was flushed twice, once by each process.  The
journal now detects the PID change and reopens its own handle (and
replaces the inherited lock), so parent and children interleave only
whole lines.
"""

import json
import multiprocessing
import os

import pytest

from repro.obs.journal import WorkloadJournal
from repro.service.slowlog import SlowQueryLog

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable")

FORK = multiprocessing.get_context("fork")


def _lines(path):
    return [line for line in
            path.read_text(encoding="utf-8").splitlines() if line]


def _child_appends(journal, count, tag):
    for i in range(count):
        journal.append({"who": tag, "i": i})
    journal.close()
    os._exit(0)


class TestJournalForkSafety:
    def test_children_reopen_and_interleave_whole_lines(self, tmp_path):
        journal = WorkloadJournal(tmp_path / "forked.jsonl")
        journal.append({"who": "parent", "i": -1})  # handle now open
        workers = [FORK.Process(target=_child_appends,
                                args=(journal, 25, f"child{n}"))
                   for n in range(3)]
        for worker in workers:
            worker.start()
        for i in range(25):
            journal.append({"who": "parent", "i": i})
        for worker in workers:
            worker.join(timeout=30)
            assert worker.exitcode == 0
        lines = _lines(journal.path)
        records = [json.loads(line) for line in lines]  # no torn lines
        assert len(records) == 1 + 25 + 3 * 25
        by_writer = {}
        for record in records:
            by_writer.setdefault(record["who"], []).append(record["i"])
        for n in range(3):
            assert sorted(by_writer[f"child{n}"]) == list(range(25))
        assert sorted(by_writer["parent"]) == list(range(-1, 25))
        journal.close()

    def test_child_does_not_flush_inherited_partial_line(self, tmp_path):
        journal = WorkloadJournal(tmp_path / "partial.jsonl")
        journal.append({"who": "parent", "i": 0})
        # Simulate a fork landing mid-append: a partial line sits in
        # the parent handle's buffer, unflushed.
        with journal._lock:
            journal._file().write('{"partial": ')
        worker = FORK.Process(target=_child_appends,
                              args=(journal, 5, "child"))
        worker.start()
        worker.join(timeout=30)
        assert worker.exitcode == 0
        # Parent completes its interrupted line afterwards.
        with journal._lock:
            handle = journal._file()
            handle.write('"done"}\n')
            handle.flush()
        records = [json.loads(line) for line in _lines(journal.path)]
        assert len(records) == 1 + 5 + 1  # partial line written ONCE
        assert sum(1 for r in records if "partial" in r) == 1
        journal.close()

    def test_child_reopen_is_counted(self, tmp_path):
        journal = WorkloadJournal(tmp_path / "opens.jsonl")
        journal.append({"i": 0})
        assert journal.opens == 1

        def child():
            journal.append({"i": 1})
            # The child reopened for itself: the inherited count (1)
            # plus its own post-fork open.
            os._exit(0 if journal.opens == 2 else 17)

        worker = FORK.Process(target=child)
        worker.start()
        worker.join(timeout=30)
        assert worker.exitcode == 0
        assert journal.opens == 1  # parent unchanged
        journal.close()


class TestSlowLogForkSafety:
    def test_forked_recorders_append_valid_records(self, tmp_path):
        log = SlowQueryLog(tmp_path / "slow.jsonl", threshold_ms=0.0,
                           exemplar_rate=1000)

        def child():
            for i in range(10):
                log.maybe_record(query=f"child q{i}", ast=None,
                                 query_class="point", wall_ns=10_000)
            log.close()
            os._exit(0)

        workers = [FORK.Process(target=child) for _ in range(2)]
        for worker in workers:
            worker.start()
        for i in range(10):
            log.maybe_record(query=f"parent q{i}", ast=None,
                             query_class="point", wall_ns=10_000)
        for worker in workers:
            worker.join(timeout=30)
            assert worker.exitcode == 0
        records = [json.loads(line) for line in _lines(log.path)]
        assert len(records) == 30
        assert sum(1 for r in records
                   if r["query"].startswith("parent")) == 10
        log.close()

"""Ablation A5 — the §6 full-text extension on a Q14-style query.

Q14 ("items whose description mentions gold") is the paper's example
of a query whose cost is dominated by scanning text values.  The §6
full-text extension turns the whole-word variant of that predicate
into one inverted-index lookup.  This ablation measures the same
query with and without the index.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import format_table, record_result
from repro.query.engine import QueryEngine

_QUERY = ('for $i in /site/regions/europe/item '
          'where word-contains($i/description/text/text(), "gold") '
          "return $i/@id")
_CONTAINER = "/site/regions/europe/item/description/text/#text"


@pytest.mark.benchmark(group="ablation-fulltext")
def test_indexed_vs_scan_word_contains(benchmark, xquec_default):
    plain = QueryEngine(xquec_default.repository)
    indexed = QueryEngine(xquec_default.repository)
    index = indexed.build_fulltext_index(_CONTAINER)

    expected = plain.execute(_QUERY).items
    got = indexed.execute(_QUERY).items
    assert got == expected
    assert expected, "the query should match something"

    start = time.perf_counter()
    for _ in range(3):
        plain.execute(_QUERY)
    scan_s = (time.perf_counter() - start) / 3
    start = time.perf_counter()
    for _ in range(3):
        indexed.execute(_QUERY)
    indexed_s = (time.perf_counter() - start) / 3

    result = benchmark.pedantic(lambda: indexed.execute(_QUERY),
                                rounds=3, iterations=1)

    table = format_table(
        "Ablation A5 — word-contains: full-text index vs scan",
        ["strategy", "seconds", "decompressions"],
        [("inverted index (Sec 6 extension)", indexed_s,
          result.stats.decompressions),
         ("decompress-and-scan", scan_s,
          plain.execute(_QUERY).stats.decompressions)],
        note=f"index: {index.word_count} words, "
             f"{index.size_bytes()} bytes; whole-word semantics make "
             "the index exact, so no per-record decompression is "
             "needed at query time.")
    record_result("ablation_fulltext", table)

    assert indexed_s < scan_s
    # The indexed path must evaluate without bulk decompression.
    assert result.stats.decompressions <= len(expected) * 2 + 2

"""Plan-verifier diagnostics attached to benchmark telemetry.

Every instrumented benchmark run now carries the static verifier's
findings in its telemetry document (``diagnostics`` key), so a result
file records not only *how fast* a query ran but also whether its plan
degraded anywhere (decompressing interval probes, blob scans).  This
bench persists one such document per representative XMark query
through the shared ``telemetry_sink`` fixture and asserts the engine
gate held: no error-severity diagnostic ever reaches an executed run.
"""

from __future__ import annotations

import pytest

from repro.obs import runtime
from repro.obs.telemetry import Telemetry
from repro.query.options import ExecutionOptions
from repro.xmark.queries import query_text

#: one cheap path query, one range query, one value join.
LINT_BENCH_QUERIES = ("Q1", "Q3", "Q8")


@pytest.mark.parametrize("query_id", LINT_BENCH_QUERIES)
def test_diagnostics_persisted_with_telemetry(query_id, xquec_system,
                                              telemetry_sink):
    telemetry = Telemetry(enabled=True)
    with runtime.activated(telemetry):
        xquec_system.query(
            query_text(query_id),
            ExecutionOptions(telemetry=telemetry)).to_xml()
    document = telemetry.to_dict()
    assert "diagnostics" in document
    # The gate raises on errors before execution, so a run that got
    # this far can only carry warnings/infos.
    severities = {d["severity"] for d in document["diagnostics"]}
    assert "error" not in severities
    assert document["diagnostics"] == \
        [d.to_dict() for d in telemetry.diagnostics]
    telemetry_sink(telemetry,
                   experiment=f"lint_{query_id.lower()}")


def test_lint_counters_match_diagnostics(xquec_system):
    """`lint.<severity>` counters mirror the diagnostics list."""
    telemetry = Telemetry(enabled=True)
    with runtime.activated(telemetry):
        xquec_system.query(query_text("Q3"),
                           ExecutionOptions(telemetry=telemetry)
                           ).to_xml()
    counters = telemetry.metrics.counters()
    for severity in ("warning", "info"):
        expected = sum(d.severity == severity
                       for d in telemetry.diagnostics)
        assert counters.get(f"lint.{severity}", 0) == expected

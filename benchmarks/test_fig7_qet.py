"""Figure 7 + §5 text — query execution times, XQueC vs Galax.

The paper runs a subset of XMark queries on the 11.3 MB XMark11
document and reports that:

* XQueC is comparable to optimized Galax overall — "no performance
  penalty due to compression" (XQueC times *include* decompressing the
  results);
* XQueC is a little *worse* on Q2, Q3 and Q16 (simple unique IDs force
  parent-child joins);
* the value-join queries are where XQueC wins by orders of magnitude:
  Q8 took 2.142 s vs Galax's 126.33 s, and Galax could not finish Q9
  on the test machine at all.

Every query's results are asserted identical across engines before
timing — a QET comparison between engines returning different answers
is meaningless.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import format_table, record_result
from repro.bench.trajectory import (
    record_point as record_trajectory_point,
)
from repro.obs import runtime
from repro.obs.telemetry import Telemetry
from repro.query.options import ExecutionOptions
from repro.xmark.queries import (
    FIGURE7_QUERIES,
    JOIN_QUERIES,
    query_text,
)


@pytest.mark.benchmark(group="fig7-xquec")
@pytest.mark.parametrize("query_id", FIGURE7_QUERIES)
def test_xquec_qet(benchmark, query_id, xquec_system, galax_engine,
                   telemetry_sink):
    expected = galax_engine.execute_to_xml(query_text(query_id))
    result = benchmark.pedantic(
        lambda: xquec_system.query(query_text(query_id)).to_xml(),
        rounds=3, iterations=1)
    assert result == expected
    # One instrumented run (outside the timed rounds) attaches the
    # operator counts behind this figure to the result files and one
    # point to the persistent benchmark trajectory.
    telemetry = Telemetry(enabled=True)
    start = time.perf_counter()
    with runtime.activated(telemetry):
        xquec_system.query(
            query_text(query_id),
            ExecutionOptions(telemetry=telemetry)).to_xml()
    wall_s = time.perf_counter() - start
    telemetry_sink(telemetry, experiment=f"fig7_{query_id.lower()}")
    counters = telemetry.metrics.counters()
    comparisons = counters.get("compressed_comparisons", 0) \
        + counters.get("decompressed_comparisons", 0)
    record_trajectory_point(
        query=query_id, wall_s=wall_s,
        compressed_ratio=(counters.get("compressed_comparisons", 0)
                          / comparisons if comparisons else None),
        decompressions=counters.get("decompressions", 0),
        experiment="fig7_qet")


@pytest.mark.benchmark(group="fig7-galax")
@pytest.mark.parametrize("query_id", FIGURE7_QUERIES)
def test_galax_qet(benchmark, query_id, galax_engine):
    benchmark.pedantic(
        lambda: galax_engine.execute_to_xml(query_text(query_id)),
        rounds=3, iterations=1)


@pytest.mark.benchmark(group="fig7-summary")
def test_fig7_summary_table(benchmark, xquec_system, galax_engine):
    def run():
        rows = []
        for query_id in FIGURE7_QUERIES + JOIN_QUERIES:
            query = query_text(query_id)
            start = time.perf_counter()
            ours = xquec_system.query(query).to_xml()
            xquec_s = time.perf_counter() - start
            start = time.perf_counter()
            theirs = galax_engine.execute_to_xml(query)
            galax_s = time.perf_counter() - start
            assert ours == theirs, f"{query_id} results diverge"
            rows.append((query_id, xquec_s, galax_s,
                         galax_s / max(xquec_s, 1e-9)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        "Figure 7 — QET (seconds), XQueC vs Galax stand-in",
        ["query", "XQueC s", "Galax s", "Galax/XQueC"],
        rows,
        note="Paper shape: comparable on most queries, XQueC a bit "
             "worse on Q2/Q3/Q16 (parent-child joins over simple "
             "IDs), orders of magnitude better on the join queries "
             "Q8/Q9 (126 s / unmeasurable for Galax in the paper).")
    record_result("fig7_qet", table)

    by_id = {row[0]: row for row in rows}
    # The join queries must blow Galax up, as in the paper's §5 text.
    assert by_id["Q8"][3] > 5.0
    assert by_id["Q9"][3] > 50.0
    # And the simple-ID weakness: Q2/Q3/Q16 at most comparable.
    for weak in ("Q2", "Q3", "Q16"):
        assert by_id[weak][3] <= 2.0, f"{weak} should not favour XQueC"


@pytest.mark.benchmark(group="fig7-joins")
@pytest.mark.parametrize("query_id", JOIN_QUERIES)
def test_q8_q9_joins(benchmark, query_id, xquec_system):
    """The §5 headline: join queries at interactive speed on XQueC."""
    result = benchmark.pedantic(
        lambda: xquec_system.query(query_text(query_id)),
        rounds=3, iterations=1)
    assert len(result) > 0

"""Ablation A1 — sorted-container interval search vs full scans.

DESIGN.md calls out the record order inside containers as a design
choice: lexicographic order enables binary-searched ``ContAccess``
(§2.2 "Records are not placed in the document order, but in a
lexicographic order, to enable fast binary search").  This ablation
measures a selective value predicate through both access paths, and the
engine-level effect of the RangePlan optimization.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import format_table, record_result
from repro.query.physical import ContAccess, ContScan

_NAME_PATH = "/site/people/person/name/#text"


@pytest.mark.benchmark(group="ablation-access")
def test_interval_search_vs_scan(benchmark, xquec_default):
    repository = xquec_default.repository
    container = repository.container(_NAME_PATH)
    low, high = "J", "K"  # names starting with J

    def interval():
        return list(container.interval_search(low, high,
                                              high_inclusive=False))

    def scan_filter():
        codec = container.codec
        return [(p, cv) for p, cv in container.scan()
                if low <= codec.decode(cv) < high]

    expected = {p for p, _ in scan_filter()}
    got = {p for p, _ in interval()}
    assert got == expected

    start = time.perf_counter()
    for _ in range(5):
        interval()
    interval_s = (time.perf_counter() - start) / 5
    start = time.perf_counter()
    for _ in range(5):
        scan_filter()
    scan_s = (time.perf_counter() - start) / 5

    benchmark.pedantic(interval, rounds=5, iterations=1)

    table = format_table(
        "Ablation A1 — ContAccess (binary search) vs decompressing scan",
        ["access path", "seconds", "records touched"],
        [("ContAccess interval", interval_s, len(got)),
         ("ContScan + decode filter", scan_s, len(container))],
        note="The sorted container turns a selective predicate into a "
             "binary search over compressed bytes; the scan decodes "
             "every record.")
    record_result("ablation_access_paths", table)

    assert interval_s < scan_s, \
        "interval search must beat the decompressing scan"


@pytest.mark.benchmark(group="ablation-access")
def test_physical_operators_agree(benchmark, xquec_default):
    """ContAccess output == filtered ContScan output (operator level)."""
    repository = xquec_default.repository

    def run():
        access_rows = ContAccess(repository, _NAME_PATH, "id", "value",
                                 low="B", high="C",
                                 high_inclusive=False).rows()
        codec = repository.container(_NAME_PATH).codec
        scan_rows = [row for row in
                     ContScan(repository, _NAME_PATH, "id",
                              "value").rows()
                     if "B" <= codec.decode(row["value"].compressed)
                     < "C"]
        return access_rows, scan_rows

    access_rows, scan_rows = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    assert {r["id"].node_id for r in access_rows} == \
        {r["id"].node_id for r in scan_rows}

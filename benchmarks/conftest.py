"""Shared benchmark fixtures.

Documents and loaded systems are expensive; they are generated once per
session and shared by all benches.  ``BENCH_FACTOR`` scales the XMark
document (0.05 ~= 600 KB here vs the paper's 11.3 MB XMark11 — the
*shape* of every comparison is scale-free, see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.baselines.galax import GalaxEngine
from repro.core.system import XQueCSystem
from repro.xmark.generator import generate_xmark
from repro.xmark.queries import XMARK_QUERIES

BENCH_FACTOR = 0.05
BENCH_SEED = 42


@pytest.fixture(scope="session")
def xmark_text() -> str:
    return generate_xmark(factor=BENCH_FACTOR, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def xquec_system(xmark_text) -> XQueCSystem:
    """XQueC loaded the way the paper benchmarks it: with the XMark
    query workload driving the compression configuration."""
    queries = [text for _, text in XMARK_QUERIES.values()]
    return XQueCSystem.load(xmark_text, workload_queries=queries)


@pytest.fixture(scope="session")
def xquec_default(xmark_text) -> XQueCSystem:
    """XQueC under the no-workload defaults (§2.1)."""
    return XQueCSystem.load(xmark_text)


@pytest.fixture(scope="session")
def xquec_session(xquec_system):
    """The workload-tuned system's serving session (plan + block
    caches shared by every bench that uses it)."""
    return xquec_system.session


@pytest.fixture(scope="session")
def galax_engine(xmark_text) -> GalaxEngine:
    return GalaxEngine(xmark_text)


@pytest.fixture
def telemetry_sink(request):
    """A per-bench telemetry collector that persists what it is fed.

    A bench calls ``telemetry_sink(telemetry)`` (optionally with an
    explicit ``experiment=`` name) for each instrumented run it wants
    attached to its result files; every document is written to
    ``benchmarks/results/<experiment>.telemetry.json`` at teardown.
    """
    from repro.bench.reporting import record_telemetry

    collected: list[tuple[str, object]] = []
    default_name = request.node.name.replace("[", ".").rstrip("]")

    def sink(telemetry, experiment: str | None = None):
        collected.append((experiment or default_name, telemetry))
        return telemetry

    yield sink
    for name, telemetry in collected:
        record_telemetry(name, telemetry)

"""Ablation A2 — compressed-domain predicates vs decompress-then-compare.

XQueC's headline mechanism (§2.1/§4): with an order-preserving codec,
equality *and* inequality selections compare compressed bytes — one
constant encode instead of one decode per record.  This ablation pits
the two strategies against each other on the same container and also
verifies the engine actually stays in the compressed domain (via the
EvaluationStats counters).
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import format_table, record_result

_NAME_PATH = "/site/people/person/name/#text"


@pytest.mark.benchmark(group="ablation-compressed")
def test_compressed_vs_decompressed_selection(benchmark,
                                              xquec_default):
    container = xquec_default.repository.container(_NAME_PATH)
    codec = container.codec
    constant = "John Smith"
    encoded = codec.encode(constant)
    records = [cv for _, cv in container.scan()]

    def compressed_domain():
        return sum(1 for cv in records if cv < encoded)

    def decompress_first():
        return sum(1 for cv in records if codec.decode(cv) < constant)

    assert compressed_domain() == decompress_first()

    start = time.perf_counter()
    for _ in range(5):
        compressed_domain()
    compressed_s = (time.perf_counter() - start) / 5
    start = time.perf_counter()
    for _ in range(5):
        decompress_first()
    decompressed_s = (time.perf_counter() - start) / 5

    benchmark.pedantic(compressed_domain, rounds=5, iterations=1)

    table = format_table(
        "Ablation A2 — inequality selection strategies "
        f"({len(records)} records)",
        ["strategy", "seconds", "speedup"],
        [("compare compressed (ALM, order-preserving)", compressed_s,
          1.0),
         ("decompress then compare", decompressed_s,
          decompressed_s / max(compressed_s, 1e-9))],
        note="The order-preserving codec answers `<` on compressed "
             "bytes; the alternative decodes every record first.")
    record_result("ablation_compressed_predicates", table)

    assert compressed_s < decompressed_s


@pytest.mark.benchmark(group="ablation-compressed")
def test_engine_stays_compressed_on_inequality(benchmark,
                                               xquec_default):
    """EvaluationStats must show compressed comparisons dominating."""
    query = ('for $p in /site/people/person '
             'where $p/name/text() < "C" return $p/@id')

    result = benchmark.pedantic(
        lambda: xquec_default.query(query), rounds=3, iterations=1)
    stats = result.stats
    # The selection must not decompress each candidate: decompressions
    # are bounded by the result size (final serialization only).
    assert stats.decompressions <= len(result) + 2
    assert stats.compressed_comparisons + stats.container_accesses > 0

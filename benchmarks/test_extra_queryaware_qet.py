"""Extra experiment — query times across the query-aware compressors.

The paper could not benchmark XGrind/XPRESS query times (no working
binaries, §5) but argues throughout (§1.2, §2.3, Figure 4) that their
fixed top-down evaluation — one pass over the whole homomorphic
stream per query — cannot compete with XQueC's selective access paths
(summary + binary-searched containers).  With all three systems
reimplemented, that argument becomes measurable.

Workload: an exact-match selection (the one query shape all three
support).  Expected shape: XQueC sub-linear (summary + interval
search); XGrind and XPRESS linear in the document (full-stream scan /
per-element containment tests).
"""

from __future__ import annotations

import time

import pytest

from repro.baselines.xgrind import XGrindDocument
from repro.baselines.xpress import XPressDocument
from repro.bench.reporting import format_table, record_result
from repro.query.engine import QueryEngine


@pytest.mark.benchmark(group="extra-queryaware")
def test_exact_match_across_systems(benchmark, xquec_default,
                                    xmark_text):
    xgrind = XGrindDocument.compress(xmark_text)
    xpress = XPressDocument.compress(xmark_text)
    engine = QueryEngine(xquec_default.repository)

    constant = "Regular"
    xquec_query = ("count(for $a in /site/closed_auctions/"
                   "closed_auction "
                   f'where $a/type/text() = "{constant}" return $a)')
    path = "/site/closed_auctions/closed_auction/type"

    expected = int(engine.execute(xquec_query).items[0])
    assert len(xgrind.query(path, "=", constant)) == expected
    assert xpress.values_equal(path, constant) == expected

    def timed(function) -> float:
        start = time.perf_counter()
        for _ in range(3):
            function()
        return (time.perf_counter() - start) / 3

    xquec_s = timed(lambda: engine.execute(xquec_query))
    xgrind_s = timed(lambda: xgrind.query(path, "=", constant))
    xpress_s = timed(lambda: xpress.values_equal(path, constant))

    benchmark.pedantic(lambda: engine.execute(xquec_query), rounds=3,
                       iterations=1)

    table = format_table(
        "Extra — exact-match selection across query-aware systems",
        ["system", "strategy", "seconds"],
        [("XQueC", "summary + ContAccess interval", xquec_s),
         ("XGrind", "top-down scan of the whole stream", xgrind_s),
         ("XPRESS", "per-entry interval containment scan", xpress_s)],
        note=f"{expected} matches. The paper's §1.2 claim made "
             "measurable: homomorphic systems pay a full-document "
             "pass per query; XQueC jumps through its access "
             "structures.")
    record_result("extra_queryaware_qet", table)

    assert xquec_s < xgrind_s
    assert xquec_s < xpress_s

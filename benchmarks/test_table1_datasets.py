"""Table 1 — characteristics of the data sets used in the experiments.

Paper values (full-size documents):

    Shakespeare        7.3 MB   prose-heavy play markup
    WashingtonCourse   1.9 MB   record-like course catalogue
    Baseball           1.1 MB   numeric player statistics
    XMark11           11.3 MB   synthetic auction site (QET document)

We regenerate each stand-in at a laptop-friendly scale and report the
measured characteristics plus the extrapolated full size, which must
land near the paper's megabytes.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table, record_result
from repro.xmark.datasets import TABLE1_DATASETS
from repro.xmark.generator import generate_xmark
from repro.xmlio.events import Characters, StartElement, iter_events

_SCALE = 0.05


def _characteristics(text: str):
    size = len(text.encode("utf-8"))
    elements = 0
    value_bytes = 0
    tags = set()
    for event in iter_events(text):
        if isinstance(event, StartElement):
            elements += 1
            tags.add(event.name)
            for _, value in event.attributes:
                value_bytes += len(value.encode("utf-8"))
        elif isinstance(event, Characters):
            value_bytes += len(event.text.encode("utf-8"))
    return size, elements, len(tags), value_bytes / size


@pytest.mark.benchmark(group="table1")
def test_table1_dataset_characteristics(benchmark):
    def build():
        rows = []
        for name, (generator, _, paper_mb) in TABLE1_DATASETS.items():
            text = generator(factor=_SCALE)
            size, elements, tags, value_share = _characteristics(text)
            rows.append((name, f"{size / 1024:.0f} KB",
                         elements, tags, value_share,
                         f"{size / _SCALE / 1e6:.1f} MB", paper_mb))
        text = generate_xmark(factor=_SCALE)
        size, elements, tags, value_share = _characteristics(text)
        rows.append(("XMark11", f"{size / 1024:.0f} KB", elements,
                     tags, value_share,
                     f"{size / _SCALE / 1e6:.1f} MB", 11.3))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    table = format_table(
        f"Table 1 — data sets (generated at scale {_SCALE})",
        ["dataset", "size", "elements", "tags", "value share",
         "extrapolated full", "paper MB"],
        rows,
        note="Value share 0.6-0.8 matches the paper's 70-80% "
             "observation; extrapolated sizes must be within ~2x of "
             "the paper's megabytes.")
    record_result("table1_datasets", table)

    for row in rows:
        extrapolated = float(row[5].split()[0])
        paper = row[6]
        assert extrapolated == pytest.approx(paper, rel=1.0), row[0]
        # Prose-heavy documents sit in the paper's 70-80% band;
        # the numeric Baseball records are legitimately tag-heavier.
        assert 0.12 < row[4] < 0.9, row[0]
    by_name = {row[0]: row for row in rows}
    assert by_name["XMark11"][4] > 0.6
    assert by_name["Shakespeare"][4] > 0.55

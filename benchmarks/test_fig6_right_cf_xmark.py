"""Figure 6 (right) — compression factors on scaled XMark documents.

The paper sweeps xmlgen documents from 1 MB to 25 MB and reports CF for
XQueC, XPRESS and XMill (XGrind repeatedly crashed on XMark: the paper
could only load a 100 KB document at CF 17.36%, "very low and not
representative").  Expected shape:

* CF roughly flat in document size for every system;
* XMill on top; XQueC close to XPRESS below it.
"""

from __future__ import annotations

import pytest

from repro.baselines.xmill import XMillArchive
from repro.baselines.xpress import XPressDocument
from repro.bench.reporting import format_table, record_result
from repro.core.system import XQueCSystem
from repro.xmark.generator import generate_xmark
from repro.xmark.queries import XMARK_QUERIES

#: paper sweep 1-25 MB maps to these factors at our laptop scale.
_FACTORS = (0.01, 0.02, 0.05, 0.08)


@pytest.mark.benchmark(group="fig6-right")
def test_fig6_right_cf_vs_size(benchmark):
    queries = [text for _, text in XMARK_QUERIES.values()]

    def run():
        rows = []
        for factor in _FACTORS:
            text = generate_xmark(factor=factor, seed=7)
            size_kb = len(text.encode("utf-8")) // 1024
            xquec = XQueCSystem.load(
                text, workload_queries=queries).compression_factor
            xpress = XPressDocument.compress(text).compression_factor
            xmill = XMillArchive.compress(text).compression_factor
            rows.append((f"{size_kb} KB", xmill, xquec, xpress))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        "Figure 6 (right) — CF vs XMark document size",
        ["document", "XMill", "XQueC", "XPRESS"],
        rows,
        note="Paper shape: XMill on top, XQueC and XPRESS close "
             "together below; all roughly flat with size.  (XGrind "
             "could not load XMark documents in the paper either.)")
    record_result("fig6_right_cf_xmark", table)

    for _, xmill, xquec, xpress in rows:
        assert xmill > xquec > 0.4
        assert abs(xquec - xpress) < 0.15
    # Roughly flat: CF at the largest size within 10 points of the
    # smallest.
    assert abs(rows[0][2] - rows[-1][2]) < 0.10

"""§2.3 / Figure 4 — memory behaviour on descendant queries (Q14).

The paper's argument: for ``//item`` queries with a content predicate,
homomorphic systems (XGrind/XPRESS) "have to load into main-memory all
the document and parse it entirely", while XQueC parses only the
structure summary and fetches the involved containers (Figure 4:
C1-C3) — the reason it "scales better" than in-memory XQuery engines
(§1, §2.3).

We reproduce the claim with two measurements:

* **data touched**: bytes of compressed/input data each strategy must
  read to answer Q14 — the whole document for a homomorphic top-down
  scan vs summary + involved containers for XQueC;
* **peak allocations** while evaluating Q14, XQueC vs the DOM-based
  Galax stand-in (which holds the whole parsed document).
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro.baselines.galax import GalaxEngine
from repro.bench.reporting import format_table, record_result
from repro.query.engine import QueryEngine
from repro.xmark.queries import query_text

_Q14 = "Q14"


def _touched_container_bytes(system) -> tuple[int, int]:
    """(summary bytes, bytes of the containers Q14 involves)."""
    repository = system.repository
    report = repository.size_report()
    involved = 0
    for leaf in repository.summary.resolve(
            [("child", "site"), ("descendant", "item"),
             ("child", "description"), ("descendant", "#text")]):
        if leaf.container_path:
            involved += repository.container(
                leaf.container_path).data_size_bytes()
    for leaf in repository.summary.resolve(
            [("child", "site"), ("descendant", "item"),
             ("child", "name"), ("child", "#text")]):
        if leaf.container_path:
            involved += repository.container(
                leaf.container_path).data_size_bytes()
    return report.summary, involved


@pytest.mark.benchmark(group="sec23")
def test_data_touched_by_q14(benchmark, xquec_system, xmark_text):
    summary_bytes, container_bytes = benchmark.pedantic(
        lambda: _touched_container_bytes(xquec_system),
        rounds=1, iterations=1)
    document_bytes = len(xmark_text.encode("utf-8"))
    xquec_bytes = summary_bytes + container_bytes
    table = format_table(
        "Sec 2.3 / Figure 4 — data touched to answer Q14",
        ["strategy", "bytes", "share of document"],
        [("homomorphic top-down scan (XGrind/XPRESS)",
          document_bytes, 1.0),
         ("XQueC: structure summary + involved containers",
          xquec_bytes, xquec_bytes / document_bytes)],
        note="XQueC jumps through the summary to containers C1..C3 "
             "(Figure 4); the homomorphic systems parse the entire "
             "stream.")
    record_result("sec23_data_touched", table)
    # The selective strategy must touch well under half the document.
    assert xquec_bytes < 0.5 * document_bytes


@pytest.mark.benchmark(group="sec23")
def test_resident_footprint_q14(benchmark, xquec_system, xmark_text):
    """Resident data each engine needs to answer queries at all.

    A note on method: Python's per-object overhead (~50-100 bytes per
    boxed value) would dominate a tracemalloc comparison of live object
    graphs and say nothing about the paper's systems, so the resident
    footprint is compared at the *data* level — the serialized
    compressed repository vs the allocations of parsing the document
    into a DOM (what Galax must hold).
    """
    query = query_text(_Q14)
    engine = QueryEngine(xquec_system.repository)
    repository_bytes = xquec_system.size_report().total

    def dom_allocations() -> int:
        tracemalloc.start()
        galax = GalaxEngine(xmark_text)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        galax.execute(query)  # keep it honest: the DOM answers Q14
        return peak

    def evaluation_churn() -> int:
        tracemalloc.start()
        engine.execute(query).to_xml()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    dom_bytes = dom_allocations()
    churn = evaluation_churn()
    benchmark.pedantic(evaluation_churn, rounds=1, iterations=1)

    table = format_table(
        "Sec 2.3 — resident footprint to be able to answer Q14",
        ["engine", "bytes"],
        [("XQueC compressed repository (serialized, all access "
          "structures)", repository_bytes),
         ("Galax stand-in: allocations of parse + DOM", dom_bytes),
         ("(context) XQueC transient evaluation churn", churn)],
        note="The paper (§1, §2.3): in-memory XQuery prototypes are "
             "limited by their memory consumption; XQueC's compressed "
             "repository is a fraction of the parsed tree.")
    record_result("sec23_peak_memory", table)
    assert repository_bytes < dom_bytes

"""Ablation A4 — 3-valued IDs: structural join vs parent-chain joins.

The paper attributes its Figure 7 losses on Q2/Q3/Q16 to simple unique
IDs ("our data model imposes a large number of parent-child joins")
and expects "much better once XQueC will migrate to 3-valued IDs"
(§5/§6).  We implemented that migration: the loader assigns
``(pre, post, level)`` to every node, and
:class:`repro.query.structural.StructuralJoin` pairs ancestors with
descendants in one stack-tree merge pass.

This ablation measures both strategies on an ancestor/descendant
pairing over the XMark document.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import format_table, record_result
from repro.query.structural import navigation_pairs, structural_pairs


@pytest.mark.benchmark(group="ablation-structural")
def test_structural_vs_navigation_join(benchmark, xquec_default):
    repository = xquec_default.repository
    # Ancestors: every open_auction; descendants: every date element
    # (bidder dates and interval bounds) — a Q2/Q3-flavoured pairing.
    auctions = sorted({i for n in repository.summary.resolve(
        [("descendant", "open_auction")]) for i in n.extent})
    dates = sorted({i for n in repository.summary.resolve(
        [("descendant", "date")]) for i in n.extent}
        | {i for n in repository.summary.resolve(
            [("descendant", "start")]) for i in n.extent})

    structure = repository.structure
    expected = sorted(navigation_pairs(structure, auctions, dates))
    got = sorted(structural_pairs(structure, auctions, dates))
    assert got == expected

    start = time.perf_counter()
    for _ in range(3):
        structural_pairs(structure, auctions, dates)
    structural_s = (time.perf_counter() - start) / 3
    start = time.perf_counter()
    for _ in range(3):
        navigation_pairs(structure, auctions, dates)
    navigation_s = (time.perf_counter() - start) / 3

    benchmark.pedantic(
        lambda: structural_pairs(structure, auctions, dates),
        rounds=3, iterations=1)

    table = format_table(
        "Ablation A4 — structural join (3-valued IDs) vs parent-chain",
        ["strategy", "seconds", "pairs"],
        [("StructuralJoin (stack-tree merge)", structural_s,
          len(got)),
         ("parent-chain navigation (simple IDs)", navigation_s,
          len(expected))],
        note=f"{len(auctions)} ancestors x {len(dates)} descendants. "
             "Finding: at XMark's shallow depth (<= 6) an in-memory "
             "hash-set parent chain is competitive; the (pre, post, "
             "level) merge wins on guarantees — one sequential pass, "
             "no random parent lookups — which is what matters in the "
             "paper's disk-resident setting (§6).")
    record_result("ablation_structural_join", table)

    # Both are linear-time here; the structural join must stay within
    # a small constant factor while making no random accesses.
    assert structural_s < max(navigation_s, 1e-4) * 20

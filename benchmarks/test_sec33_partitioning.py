"""§3.3 example — NaiveConf vs GoodConf container partitioning.

The paper's worked example: five ~6 MB containers — three filled with
Shakespearean sentences, one with person names, one with dates — under
an inequality workload.  Naively compressing all five with ALM and one
shared source model ("NaiveConf") yields CF 56.14%; the greedy search
finds three partitions ({prose x3}, {names}, {dates}, "GoodConf") with
per-partition CFs 67.14% / 71.75% / 65.15%.

Shape to reproduce: the search separates the three data families, every
GoodConf partition compresses better than NaiveConf's shared model on
the same data, and the prose/names partitions gain clearly while dates
gain little or even lose slightly on decompression-relevant size.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table, record_result
from repro.compression.alm import ALMCodec
from repro.partitioning.cost import ContainerProfile
from repro.partitioning.search import greedy_search
from repro.partitioning.workload import Predicate, Workload
from repro.xmark.text_source import TextSource


def _containers() -> dict[str, list[str]]:
    source = TextSource(seed=33)
    prose = {
        f"/prose{i}": [source.sentence(8, 20) for _ in range(700)]
        for i in range(1, 4)
    }
    names = {"/names": [source.person_name() for _ in range(1500)]}
    dates = {"/dates": [source.date() for _ in range(2000)]}
    return {**prose, **names, **dates}


def _cf(values: list[str], codec: ALMCodec) -> float:
    raw = sum(len(v.encode("utf-8")) for v in values)
    compressed = sum(codec.encode(v).nbytes for v in values)
    compressed += codec.model_size_bytes() / 5  # amortized share
    return 1.0 - compressed / raw


@pytest.mark.benchmark(group="sec33")
def test_naive_vs_good_configuration(benchmark):
    containers = _containers()
    # "XQuery queries with inequality predicates over the path
    # expressions leading to the above containers": constants on every
    # container plus comparisons between the prose containers — the
    # predicates that let the greedy moves consider sharing a model.
    workload = Workload(
        [Predicate("ineq", path) for path in containers] * 3
        + [Predicate("ineq", "/prose1", "/prose2"),
           Predicate("ineq", "/prose2", "/prose3"),
           Predicate("ineq", "/prose1", "/prose3")])
    profiles = [ContainerProfile.from_values(path, values)
                for path, values in containers.items()]

    def run():
        configuration, _ = greedy_search(profiles, workload, seed=3)
        # NaiveConf: one shared ALM source model over everything.
        all_values = [v for values in containers.values()
                      for v in values]
        naive_codec = ALMCodec.train(all_values)
        rows = []
        for group in sorted(configuration.groups,
                            key=lambda g: g.container_paths):
            member_values = [v for path in group.container_paths
                             for v in containers[path]]
            good_codec = ALMCodec.train(member_values)
            naive_cf = _cf(member_values, naive_codec)
            good_cf = _cf(member_values, good_codec)
            rows.append(("+".join(p.lstrip("/") for p in
                                  group.container_paths),
                         group.algorithm, naive_cf, good_cf,
                         good_cf - naive_cf))
        return configuration, rows

    configuration, rows = benchmark.pedantic(run, rounds=1,
                                             iterations=1)
    table = format_table(
        "Sec 3.3 — NaiveConf (one shared model) vs GoodConf (greedy)",
        ["partition", "algorithm", "NaiveConf CF", "GoodConf CF",
         "gain"],
        rows,
        note="Paper: NaiveConf 56.14% -> GoodConf 67.14/71.75/65.15% "
             "with the three prose containers grouped; dates benefit "
             "least.")
    record_result("sec33_partitioning", table)

    # The greedy search must separate the three data families.
    prose_group = configuration.group_of("/prose1")
    assert prose_group is configuration.group_of("/prose2")
    assert prose_group is configuration.group_of("/prose3")
    assert configuration.group_of("/names") is not prose_group
    assert configuration.group_of("/dates") is not prose_group
    assert configuration.group_of("/names") is not \
        configuration.group_of("/dates")
    # The inequality workload selects the order-preserving codec.
    assert prose_group.algorithm == "alm"
    # Every partition must compress at least as well under GoodConf,
    # and the dedicated source models must land in the paper's
    # 65-72% band for the separated families.
    by_name = {row[0]: row for row in rows}
    for name, row in by_name.items():
        assert row[4] >= -0.01, f"{name} must not lose CF"
    assert by_name["names"][3] > 0.6
    assert by_name["dates"][3] > 0.6
    prose_key = next(k for k in by_name if "prose" in k)
    assert by_name[prose_key][3] > 0.6

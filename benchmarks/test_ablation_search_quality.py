"""Ablation A6 — search quality: greedy vs simulated annealing.

§3.3 concedes the greedy "explores a fixed subset of possible
configuration moves" and "yields a locally optimal solution".  How far
from a good optimum does it land?  This ablation pits it against a
simulated-annealing search (free to take uphill moves over the same
move set) on the §3.3-style scenario, comparing reached cost and the
number of cost-function evaluations each needed.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table, record_result
from repro.partitioning.config import CompressionConfiguration
from repro.partitioning.cost import ContainerProfile, CostModel
from repro.partitioning.search import annealing_search, greedy_search
from repro.partitioning.workload import Predicate, Workload
from repro.xmark.text_source import TextSource


def _scenario():
    source = TextSource(seed=46)
    prose = [[source.sentence(8, 18) for _ in range(300)]
             for _ in range(3)]
    names = [source.person_name() for _ in range(600)]
    dates = [source.date() for _ in range(800)]
    emails = [source.email(source.person_name()) for _ in range(400)]
    profiles = [
        ContainerProfile.from_values("/prose1", prose[0]),
        ContainerProfile.from_values("/prose2", prose[1]),
        ContainerProfile.from_values("/prose3", prose[2]),
        ContainerProfile.from_values("/names", names),
        ContainerProfile.from_values("/dates", dates),
        ContainerProfile.from_values("/emails", emails),
    ]
    workload = Workload(
        [Predicate("ineq", p.path) for p in profiles] * 2
        + [Predicate("ineq", "/prose1", "/prose2"),
           Predicate("ineq", "/prose2", "/prose3"),
           Predicate("eq", "/names", "/emails"),
           Predicate("wild", "/emails")])
    return profiles, workload


@pytest.mark.benchmark(group="ablation-search")
def test_greedy_vs_annealing(benchmark):
    profiles, workload = _scenario()
    model = CostModel(profiles, workload)
    initial = CompressionConfiguration.singletons(
        [p.path for p in profiles], "bzip2")
    initial_cost = model.cost(initial)

    def run():
        greedy_config, greedy_cost = greedy_search(profiles, workload,
                                                   seed=2)
        sa_config, sa_cost = annealing_search(profiles, workload,
                                              seed=2, iterations=800)
        return (greedy_config, greedy_cost, sa_config, sa_cost)

    greedy_config, greedy_cost, sa_config, sa_cost = benchmark.pedantic(
        run, rounds=1, iterations=1)

    predicates = len(workload)
    table = format_table(
        "Ablation A6 — configuration search quality",
        ["strategy", "cost", "vs initial", "cost evaluations",
         "groups"],
        [("initial s0 (singletons, bzip2)", initial_cost, 1.0, 0,
          len(initial.groups)),
         ("greedy (paper Sec 3.3)", greedy_cost,
          greedy_cost / initial_cost, f"~{2 * predicates}",
          len(greedy_config.groups)),
         ("simulated annealing (800 iters)", sa_cost,
          sa_cost / initial_cost, "800",
          len(sa_config.groups))],
        note="Same move set; the annealer may take uphill moves.  The "
             "paper's linear-in-|Pred| greedy is the budget option; "
             "the annealer bounds how much its local optimum leaves "
             "on the table.")
    record_result("ablation_search_quality", table)

    assert greedy_cost < initial_cost
    assert sa_cost < initial_cost
    # The greedy local optimum must be within 25% of the annealer's.
    assert greedy_cost <= sa_cost * 1.25

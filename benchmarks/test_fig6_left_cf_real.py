"""Figure 6 (left) — average compression factor on the real corpus.

The paper compares XMill, XQueC, XPRESS and XGrind on Shakespeare,
Washington-Course and Baseball.  Expected shape (paper):

* XMill wins (opaque chunk compression, no queryability);
* XQueC "closely tracks XPRESS";
* XGrind is lowest among the four.
"""

from __future__ import annotations

import pytest

from repro.baselines.xgrind import XGrindDocument
from repro.baselines.xmill import XMillArchive
from repro.baselines.xpress import XPressDocument
from repro.bench.reporting import format_table, record_result
from repro.core.system import XQueCSystem
from repro.xmark.datasets import TABLE1_DATASETS
from repro.util.stats import mean

_SCALE = 0.04

#: a small workload per dataset so XQueC compresses the way it is
#: meant to be used (§3): queried containers queryable, the rest bzip2.
_WORKLOADS = {
    "Shakespeare": [
        'for $s in /plays/play/act/scene/speech '
        'where $s/speaker/text() = "JAMES" return $s/line/text()',
        'for $p in /plays/play where $p/title/text() < "M" '
        "return $p/title/text()",
    ],
    "WashingtonCourse": [
        'for $c in /root/course where $c/credits/text() >= 4 '
        "return $c/title/text()",
        'for $c in /root/course where contains($c/instructor/text(), '
        '"Smith") return $c/code/text()',
    ],
    "Baseball": [
        "for $p in /season/team/player where $p/home_runs/text() > 20 "
        "return $p/surname/text()",
        'for $t in /season/team where $t/name/text() = "Hawks" '
        "return count($t/player)",
    ],
}


@pytest.mark.benchmark(group="fig6-left")
def test_fig6_left_average_cf(benchmark):
    def run():
        per_system: dict[str, list[float]] = {
            "XMill": [], "XQueC": [], "XPRESS": [], "XGrind": []}
        rows = []
        for name, (generator, _, _) in TABLE1_DATASETS.items():
            text = generator(factor=_SCALE)
            xmill = XMillArchive.compress(text).compression_factor
            xquec = XQueCSystem.load(
                text,
                workload_queries=_WORKLOADS[name]).compression_factor
            xpress = XPressDocument.compress(text).compression_factor
            xgrind = XGrindDocument.compress(text).compression_factor
            per_system["XMill"].append(xmill)
            per_system["XQueC"].append(xquec)
            per_system["XPRESS"].append(xpress)
            per_system["XGrind"].append(xgrind)
            rows.append((name, xmill, xquec, xpress, xgrind))
        rows.append(("AVERAGE", *(mean(per_system[s]) for s in
                                  ("XMill", "XQueC", "XPRESS",
                                   "XGrind"))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        "Figure 6 (left) — average CF on the real-data corpus",
        ["dataset", "XMill", "XQueC", "XPRESS", "XGrind"],
        rows,
        note="Shape check: XMill best; XQueC tracks XPRESS; both "
             "query-aware systems trade CF for queryability.")
    record_result("fig6_left_cf_real", table)

    average = rows[-1]
    xmill, xquec, xpress, xgrind = average[1:]
    assert xmill > xquec, "XMill must beat the query-aware systems"
    assert xmill > xpress
    # XQueC within 15 CF points of XPRESS ("closely tracks"); our
    # structure records and access structures cost more on the
    # record-like datasets than the paper's Java/BDB layout did — see
    # EXPERIMENTS.md.
    assert abs(xquec - xpress) < 0.15
    assert xquec > xgrind - 0.10
    # On the prose-dominated dataset — the regime XQueC's value
    # compression targets — it must beat XGrind outright.
    shakespeare = rows[0]
    assert shakespeare[2] > shakespeare[4]
    for row in rows:
        for cf in row[1:]:
            assert 0.0 < cf < 1.0

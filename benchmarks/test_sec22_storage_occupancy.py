"""§2.2 in-text claims — storage occupancy of the repository.

Three statements to reproduce:

* the XMark corpus is "reduced by an average factor of 60% after
  compression (these figures include all the above access structures)";
* "the structure summary is very small ... about 19% of the original
  document size" (an upper bound: ours delta-encodes the extents);
* "if we omit our access support structures (backward edges, B+ index,
  and the structure summary), we shrink the database by a factor of
  3 to 4, albeit at the price of deteriorated query performance".
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table, record_result


@pytest.mark.benchmark(group="sec22")
def test_storage_occupancy_breakdown(benchmark, xquec_system):
    report = benchmark.pedantic(xquec_system.size_report, rounds=1,
                                iterations=1)
    original = report.original
    rows = [
        ("name dictionary", report.name_dictionary,
         report.name_dictionary / original),
        ("structure records", report.structure_records,
         report.structure_records / original),
        ("B+ index (internal)", report.structure_index,
         report.structure_index / original),
        ("container data", report.container_data,
         report.container_data / original),
        ("source models", report.source_models,
         report.source_models / original),
        ("structure summary", report.summary,
         report.summary / original),
        ("TOTAL", report.total, report.total / original),
        ("essential (no access support)", report.essential,
         report.essential / original),
    ]
    table = format_table(
        "Sec 2.2 — storage occupancy (bytes, share of original)",
        ["component", "bytes", "share"],
        rows,
        note=f"CF including access structures: "
             f"{report.compression_factor:.3f} (paper: ~0.60 avg); "
             f"summary share {report.summary / original:.3f} "
             f"(paper bound: 0.19); access-support factor "
             f"{report.total / report.essential:.2f}x "
             f"(paper: 3-4x with a heavier record format).")
    record_result("sec22_storage_occupancy", table)

    # CF band: the paper reports ~60% average; accept 0.45-0.75.
    assert 0.45 < report.compression_factor < 0.75
    # Summary must stay below the paper's 19%-of-original figure.
    assert report.summary < 0.19 * original
    # Dropping access support must shrink the database noticeably.
    assert report.total / report.essential > 1.2
